package nfkit

import (
	"fmt"
	"sort"
	"sync/atomic"

	"vignat/internal/libvig"
	"vignat/internal/nf"
	"vignat/internal/nf/telemetry"
)

// Sharded is the derived RSS-style sharded composition: nShards
// independent cores, each built by the declaration's shard
// constructor, steered by the declared ShardOf, counted through one
// nf.CountedShards stats block. It replaces the three near-identical
// per-NF Sharded implementations (NAT, balancer, policer) with one.
//
// Every packet touches exactly one shard, shards share no mutable
// state, and the pipeline may run them on distinct workers with no
// synchronization on the fast path — the per-core partitioning a
// multi-queue DPDK NF gets from NIC RSS, exactly as before the kit;
// what changed is that the composition is now written once.
//
// The composition's (cores, counted-stats) pair is published through
// one atomic pointer so that Reshard — the live worker-change verb —
// can swap the whole partitioning in a single store: packet-path
// readers are quiesced by the pipeline around the swap, and the
// always-on readers that are not (metrics scrapes hitting the padded
// stats cells) see either the old block or the new one, never a torn
// mix.
type Sharded[C any] struct {
	decl  Decl[C]
	state atomic.Pointer[shardedState[C]]

	// migrated counts state records carried across Reshard calls;
	// migrationDropped counts records a reshard could not place (the
	// destination shard refused the restore — e.g. a hash-skewed
	// repartition overflowing one shard's slice of the capacity). The
	// conservation law across a composition's lifetime is
	// created − expired − unpinned − migrationDropped == live.
	// Both are control-path state: written under the pipeline's
	// control mutex, read by the control plane.
	migrated         uint64
	migrationDropped uint64
}

// shardedState is one immutable generation of the composition: the
// cores and their counted-stats block always swap together.
type shardedState[C any] struct {
	counted *nf.CountedShards
	cores   []C
}

var (
	_ nf.NF          = (*Sharded[int])(nil)
	_ nf.Sharder     = (*Sharded[int])(nil)
	_ nf.ExpiryModer = (*Sharded[int])(nil)
)

// buildState constructs nShards fresh cores plus their counted block.
func buildState[C any](d *Decl[C], nShards int) (*shardedState[C], error) {
	perShard := 0
	if d.Capacity > 0 {
		perShard = d.Capacity / nShards
	}
	st := &shardedState[C]{cores: make([]C, nShards)}
	shardNFs := make([]nf.NF, nShards)
	for i := 0; i < nShards; i++ {
		core, err := d.New(i, nShards, perShard)
		if err != nil {
			return nil, fmt.Errorf("nfkit: %s shard %d: %w", d.Name, i, err)
		}
		st.cores[i] = core
		shardNFs[i] = d.Adapt(core)
	}
	var err error
	if st.counted, err = nf.NewCountedShards(shardNFs); err != nil {
		return nil, err
	}
	return st, nil
}

// checkShardCount validates a shard count against the declaration.
func checkShardCount[C any](d *Decl[C], nShards int) error {
	if nShards < 1 {
		return fmt.Errorf("nfkit: %s shard count must be at least 1", d.Name)
	}
	if nShards > 1 && d.ShardOf == nil {
		return fmt.Errorf("nfkit: %s declares no shard steering", d.Name)
	}
	if d.Capacity > 0 && d.Capacity/nShards == 0 {
		return fmt.Errorf("nfkit: %s capacity %d cannot fill %d shards", d.Name, d.Capacity, nShards)
	}
	return nil
}

// NewSharded builds the declared NF's nShards-shard composition. With
// nShards == 1 this is exactly one core behind the nf.NF interface;
// declarations without a steering function are restricted to that
// case.
func NewSharded[C any](d Decl[C], nShards int) (*Sharded[C], error) {
	if err := d.validate(true); err != nil {
		return nil, err
	}
	if err := checkShardCount(&d, nShards); err != nil {
		return nil, err
	}
	s := &Sharded[C]{decl: d}
	st, err := buildState(&s.decl, nShards)
	if err != nil {
		return nil, err
	}
	s.state.Store(st)
	return s, nil
}

// Name identifies the sharded NF.
func (s *Sharded[C]) Name() string {
	if n := len(s.state.Load().cores); n > 1 {
		return fmt.Sprintf("%s×%d", s.decl.Name, n)
	}
	return s.decl.Name
}

// Core returns shard i's production core (tests, stats drill-down).
func (s *Sharded[C]) Core(i int) C { return s.state.Load().cores[i] }

// Cores returns every shard's core, in shard order. The slice is the
// composition's own; callers must not mutate it. A Reshard replaces
// it wholesale, so long-lived callers should re-read rather than
// cache.
func (s *Sharded[C]) Cores() []C { return s.state.Load().cores }

// ShardOf steers a frame to the shard owning its flow via the declared
// steering function, clamping misdeclared results onto shard 0 (the
// frame will be handled there like on any other shard; the clamp only
// keeps a misbehaving declaration memory-safe). It is allocation-free
// and safe for concurrent use whenever the declared function is, which
// the declaration contract requires.
func (s *Sharded[C]) ShardOf(frame []byte, fromInternal bool) int {
	n := len(s.state.Load().cores)
	if n == 1 {
		return 0
	}
	shard := s.decl.ShardOf(frame, fromInternal, n)
	if shard < 0 || shard >= n {
		return 0
	}
	return shard
}

// Process steers one frame to its shard and runs it there.
func (s *Sharded[C]) Process(frame []byte, fromInternal bool) nf.Verdict {
	st := s.state.Load()
	shard := s.shardOf(st, frame, fromInternal)
	return st.counted.CountedShard(shard).Process(frame, fromInternal)
}

// shardOf is ShardOf against an already-loaded state generation.
func (s *Sharded[C]) shardOf(st *shardedState[C], frame []byte, fromInternal bool) int {
	n := len(st.cores)
	if n == 1 {
		return 0
	}
	shard := s.decl.ShardOf(frame, fromInternal, n)
	if shard < 0 || shard >= n {
		return 0
	}
	return shard
}

// ProcessBatch steers and processes a burst, reading the clock once.
func (s *Sharded[C]) ProcessBatch(pkts []nf.Pkt, verdicts []nf.Verdict) {
	st := s.state.Load()
	now := s.decl.now()
	for i := range pkts {
		shard := s.shardOf(st, pkts[i].Frame, pkts[i].FromInternal)
		verdicts[i] = s.decl.Process(st.cores[shard], pkts[i].Frame, pkts[i].FromInternal, now)
	}
	st.counted.SyncAll()
}

// The nf.CountedShards surface, forwarded through the current state
// generation (see the type comment for why the indirection exists).

// Shards returns the shard count.
func (s *Sharded[C]) Shards() int { return s.state.Load().counted.Shards() }

// Shard returns shard i as a standalone counted NF.
func (s *Sharded[C]) Shard(i int) nf.NF { return s.state.Load().counted.Shard(i) }

// CountedShard returns shard i's counted wrapper.
func (s *Sharded[C]) CountedShard(i int) *nf.CountedNF {
	return s.state.Load().counted.CountedShard(i)
}

// SyncAll publishes every shard's pending counter deltas.
func (s *Sharded[C]) SyncAll() { s.state.Load().counted.SyncAll() }

// SetPerPacketExpiry forwards the expiry-mode switch to every shard.
func (s *Sharded[C]) SetPerPacketExpiry(on bool) bool {
	return s.state.Load().counted.SetPerPacketExpiry(on)
}

// Expire advances expiry on every shard.
func (s *Sharded[C]) Expire(now libvig.Time) int { return s.state.Load().counted.Expire(now) }

// NFStats returns StatsSnapshot.
func (s *Sharded[C]) NFStats() nf.Stats { return s.state.Load().counted.NFStats() }

// StatsSnapshot returns the counters aggregated across shards, safe
// concurrently with traffic (and with a live reshard: the atomic state
// load pins one generation for the whole read).
func (s *Sharded[C]) StatsSnapshot() nf.Stats { return s.state.Load().counted.StatsSnapshot() }

// ShardStatsSnapshot returns shard i's counters.
func (s *Sharded[C]) ShardStatsSnapshot(i int) nf.Stats {
	return s.state.Load().counted.ShardStatsSnapshot(i)
}

// AddFastPath folds the engine's flow-cache counters into shard i.
func (s *Sharded[C]) AddFastPath(i int, hits, misses, evictions, bypassed uint64) {
	s.state.Load().counted.AddFastPath(i, hits, misses, evictions, bypassed)
}

// ReasonSet returns the declared taxonomy, or nil.
func (s *Sharded[C]) ReasonSet() *telemetry.ReasonSet { return s.state.Load().counted.ReasonSet() }

// ReasonSnapshot returns the per-reason totals aggregated across
// shards, or nil when no taxonomy is declared.
func (s *Sharded[C]) ReasonSnapshot() []uint64 { return s.state.Load().counted.ReasonSnapshot() }

// ShardReasonSnapshot returns shard i's per-reason totals, or nil.
func (s *Sharded[C]) ShardReasonSnapshot(i int) []uint64 {
	return s.state.Load().counted.ShardReasonSnapshot(i)
}

// AggregateStats folds an NF-specific per-core stats snapshot across
// shards: the helper the per-NF Stats() aggregators share.
func AggregateStats[C, S any](s *Sharded[C], snap func(C) S, add func(agg *S, one S)) S {
	var agg S
	for _, core := range s.Cores() {
		add(&agg, snap(core))
	}
	return agg
}

// Broadcast runs a control-plane operation on every shard in shard
// order, stopping at the first error — the pattern every replicated
// control operation (backend add/remove, heartbeat) uses. Like all
// control-path mutations in the repository it must not run
// concurrently with packet processing.
func (s *Sharded[C]) Broadcast(op func(shard int, core C) error) error {
	for i, core := range s.Cores() {
		if err := op(i, core); err != nil {
			return err
		}
	}
	return nil
}

// Migrated returns the cumulative number of state records carried to a
// new shard by Reshard calls (broadcast records count once per
// receiving shard — they are genuinely replicated).
func (s *Sharded[C]) Migrated() uint64 { return s.migrated }

// MigrationDropped returns the cumulative number of state records a
// Reshard could not place. These are the sessions a repartition
// evicts, the "migrated" term of the conservation law; a hitless
// reshard leaves it unchanged.
func (s *Sharded[C]) MigrationDropped() uint64 { return s.migrationDropped }

// Reshard rebuilds the composition at a new shard count, migrating
// every state record through the declared codec — the hitless-reshard
// verb. The protocol is copy-then-switch: fresh cores are built,
// every record is restored into the shard owning it under the new
// partitioning, and the folded counters are seeded and pre-published,
// all before the single atomic store that commits the move — so a
// refused reshard (bad count, constructor failure, broadcast-restore
// failure) leaves the composition exactly as it was, and an observer
// never sees counters dip. Per-record restore failures on
// non-broadcast records degrade to dropped sessions (counted in
// MigrationDropped) rather than refusing the whole move, matching how
// a hash-skewed repartition must behave when one destination shard
// cannot hold its share.
//
// Counters survive the move: the old cores' internal counter vectors
// are folded and seeded into new shard 0 (codec Seed), and the new
// counted block syncs once before the swap, so the aggregate snapshot
// stays continuous and monotone. Restores never bump creation
// counters (codec contract), so created−expired−unpinned−
// migrationDropped == live holds across the move.
//
// Like every control-path mutation it must not run concurrently with
// packet processing; the pipeline quiesces its workers around it.
func (s *Sharded[C]) Reshard(n int) error {
	d := &s.decl
	if d.Codec == nil {
		return fmt.Errorf("nfkit: %s declares no shard codec", d.Name)
	}
	c := d.Codec
	if c.Snapshot == nil || c.Restore == nil || c.Shard == nil {
		return fmt.Errorf("nfkit: %s declares a partial shard codec", d.Name)
	}
	if err := checkShardCount(d, n); err != nil {
		return err
	}
	if c.Check != nil {
		if err := c.Check(n); err != nil {
			return fmt.Errorf("nfkit: %s cannot reshard to %d: %w", d.Name, n, err)
		}
	}
	old := s.state.Load()

	// Snapshot every old core and fold the counter vectors.
	var recs []StateRecord
	for _, core := range old.cores {
		recs = append(recs, c.Snapshot(core)...)
	}
	var counters []uint64
	if c.Counters != nil {
		for _, core := range old.cores {
			v := c.Counters(core)
			if counters == nil {
				counters = make([]uint64, len(v))
			}
			for i := 0; i < len(v) && i < len(counters); i++ {
				counters[i] += v[i]
			}
		}
	}

	// Restore order: structural pass first, stamp order within a pass,
	// so DChain allocations replay with monotone timestamps and
	// referenced state (LB backends) exists before its referrers.
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Pass != recs[j].Pass {
			return recs[i].Pass < recs[j].Pass
		}
		return recs[i].Stamp < recs[j].Stamp
	})

	st, err := buildState(d, n)
	if err != nil {
		return fmt.Errorf("nfkit: %s reshard to %d: %w", d.Name, n, err)
	}

	var moved, dropped uint64
	for _, rec := range recs {
		target := c.Shard(rec, n)
		if target < 0 {
			// Broadcast records are structural (replicated control
			// state); a failure here refuses the whole reshard.
			for i := range st.cores {
				if err := c.Restore(st.cores[i], rec); err != nil {
					return fmt.Errorf("nfkit: %s reshard to %d: broadcast restore: %w", d.Name, n, err)
				}
				moved++
			}
			continue
		}
		if target >= n {
			target = 0 // misdeclared codec: clamp like ShardOf does
		}
		if err := c.Restore(st.cores[target], rec); err != nil {
			dropped++
			continue
		}
		moved++
	}

	if counters != nil && c.Seed != nil {
		c.Seed(st.cores[0], counters)
	}
	// Pre-publish the seeded totals into the new padded cells, so the
	// commit below never exposes a zeroed snapshot to a scraper.
	st.counted.SyncAll()

	// Commit: everything above touched only locals.
	s.state.Store(st)
	s.migrated += moved
	s.migrationDropped += dropped
	return nil
}
