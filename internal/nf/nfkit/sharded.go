package nfkit

import (
	"fmt"

	"vignat/internal/nf"
)

// Sharded is the derived RSS-style sharded composition: nShards
// independent cores, each built by the declaration's shard
// constructor, steered by the declared ShardOf, counted through one
// nf.CountedShards stats block. It replaces the three near-identical
// per-NF Sharded implementations (NAT, balancer, policer) with one.
//
// Every packet touches exactly one shard, shards share no mutable
// state, and the pipeline may run them on distinct workers with no
// synchronization on the fast path — the per-core partitioning a
// multi-queue DPDK NF gets from NIC RSS, exactly as before the kit;
// what changed is that the composition is now written once.
type Sharded[C any] struct {
	*nf.CountedShards // Shard/Expire/NFStats/StatsSnapshot plumbing

	decl  Decl[C]
	cores []C
}

var (
	_ nf.NF          = (*Sharded[int])(nil)
	_ nf.Sharder     = (*Sharded[int])(nil)
	_ nf.ExpiryModer = (*Sharded[int])(nil)
)

// NewSharded builds the declared NF's nShards-shard composition. With
// nShards == 1 this is exactly one core behind the nf.NF interface;
// declarations without a steering function are restricted to that
// case.
func NewSharded[C any](d Decl[C], nShards int) (*Sharded[C], error) {
	if err := d.validate(true); err != nil {
		return nil, err
	}
	if nShards < 1 {
		return nil, fmt.Errorf("nfkit: %s shard count must be at least 1", d.Name)
	}
	if nShards > 1 && d.ShardOf == nil {
		return nil, fmt.Errorf("nfkit: %s declares no shard steering", d.Name)
	}
	if d.Capacity > 0 && d.Capacity/nShards == 0 {
		return nil, fmt.Errorf("nfkit: %s capacity %d cannot fill %d shards", d.Name, d.Capacity, nShards)
	}
	perShard := 0
	if d.Capacity > 0 {
		perShard = d.Capacity / nShards
	}
	s := &Sharded[C]{decl: d, cores: make([]C, nShards)}
	shardNFs := make([]nf.NF, nShards)
	for i := 0; i < nShards; i++ {
		core, err := d.New(i, nShards, perShard)
		if err != nil {
			return nil, fmt.Errorf("nfkit: %s shard %d: %w", d.Name, i, err)
		}
		s.cores[i] = core
		shardNFs[i] = d.Adapt(core)
	}
	var err error
	if s.CountedShards, err = nf.NewCountedShards(shardNFs); err != nil {
		return nil, err
	}
	return s, nil
}

// Name identifies the sharded NF.
func (s *Sharded[C]) Name() string {
	if len(s.cores) == 1 {
		return s.decl.Name
	}
	return fmt.Sprintf("%s×%d", s.decl.Name, len(s.cores))
}

// Core returns shard i's production core (tests, stats drill-down).
func (s *Sharded[C]) Core(i int) C { return s.cores[i] }

// Cores returns every shard's core, in shard order. The slice is the
// composition's own; callers must not mutate it.
func (s *Sharded[C]) Cores() []C { return s.cores }

// ShardOf steers a frame to the shard owning its flow via the declared
// steering function, clamping misdeclared results onto shard 0 (the
// frame will be handled there like on any other shard; the clamp only
// keeps a misbehaving declaration memory-safe). It is allocation-free
// and safe for concurrent use whenever the declared function is, which
// the declaration contract requires.
func (s *Sharded[C]) ShardOf(frame []byte, fromInternal bool) int {
	if len(s.cores) == 1 {
		return 0
	}
	shard := s.decl.ShardOf(frame, fromInternal, len(s.cores))
	if shard < 0 || shard >= len(s.cores) {
		return 0
	}
	return shard
}

// Process steers one frame to its shard and runs it there.
func (s *Sharded[C]) Process(frame []byte, fromInternal bool) nf.Verdict {
	return s.CountedShard(s.ShardOf(frame, fromInternal)).Process(frame, fromInternal)
}

// ProcessBatch steers and processes a burst, reading the clock once.
func (s *Sharded[C]) ProcessBatch(pkts []nf.Pkt, verdicts []nf.Verdict) {
	now := s.decl.now()
	for i := range pkts {
		shard := s.ShardOf(pkts[i].Frame, pkts[i].FromInternal)
		verdicts[i] = s.decl.Process(s.cores[shard], pkts[i].Frame, pkts[i].FromInternal, now)
	}
	s.SyncAll()
}

// AggregateStats folds an NF-specific per-core stats snapshot across
// shards: the helper the per-NF Stats() aggregators share.
func AggregateStats[C, S any](s *Sharded[C], snap func(C) S, add func(agg *S, one S)) S {
	var agg S
	for _, core := range s.cores {
		add(&agg, snap(core))
	}
	return agg
}

// Broadcast runs a control-plane operation on every shard in shard
// order, stopping at the first error — the pattern every replicated
// control operation (backend add/remove, heartbeat) uses. Like all
// control-path mutations in the repository it must not run
// concurrently with packet processing.
func (s *Sharded[C]) Broadcast(op func(shard int, core C) error) error {
	for i, core := range s.cores {
		if err := op(i, core); err != nil {
			return err
		}
	}
	return nil
}
