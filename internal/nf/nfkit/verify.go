package nfkit

import (
	"errors"
	"fmt"
	"sort"

	"vignat/internal/nf/telemetry"
	"vignat/internal/vigor/sym"
	"vignat/internal/vigor/symbex"
	"vignat/internal/vigor/trace"
)

// SymSpec is an NF's symbolic-verification declaration: the output
// vocabulary, a Drive function running the NF's stateless logic once
// against a SymDriver-backed Env, and the per-path semantic check.
// VerifySym derives the whole proof run from it — exhaustive path
// enumeration, the single-output (P4) rule over the declared outputs,
// the P2 discipline violations the driver collected, and the Spec's P1
// judgment with solver entailment — so a new NF's verification binding
// is this value, not an engine integration.
type SymSpec struct {
	// NF names the proof in reports.
	NF string
	// Outputs are the NF's declared output actions; every feasible
	// path must emit exactly one.
	Outputs []string
	// Drive builds the NF's symbolic Env over d and invokes the
	// stateless logic exactly once.
	Drive func(d *SymDriver)
	// Spec checks one feasible path against the NF's semantic
	// specification (P1), returning an error describing the violation.
	Spec func(p *SymPath) error
	// PathReason, when set, classifies one feasible path onto the NF's
	// declared reason taxonomy (Decl.Reasons). VerifyReasons uses it to
	// cross-check the taxonomy against the enumerated paths: every path
	// must classify, drop paths (output action "drop") must carry
	// drop-class reasons and only those, and every declared reason must
	// label at least one path.
	PathReason func(p *SymPath) (telemetry.ReasonID, error)
}

// Report summarizes one NF's verification, in the shape every per-NF
// report already had.
type Report struct {
	NF           string
	Paths        int
	Tasks        int
	P1Failures   []string
	P2Violations []string
	P4Violations []string
}

// OK reports whether the proof is complete.
func (r *Report) OK() bool {
	return r.Paths > 0 && len(r.P1Failures) == 0 && len(r.P2Violations) == 0 && len(r.P4Violations) == 0
}

// Summary renders the report.
func (r *Report) Summary() string {
	status := "PROOF COMPLETE"
	if !r.OK() {
		status = "PROOF FAILED"
	}
	return fmt.Sprintf("%s (%s): %d paths, %d tasks; P1: %d, P2: %d, P4: %d",
		status, r.NF, r.Paths, r.Tasks, len(r.P1Failures), len(r.P2Violations), len(r.P4Violations))
}

// SymPath is one feasible execution path as the Spec sees it: the
// trace, the path's vocabulary (via the driver that produced it), and
// entailment over the path constraints.
type SymPath struct {
	t      *trace.Trace
	d      *SymDriver
	out    string
	solver *sym.Solver
}

// Output returns the path's single output action.
func (p *SymPath) Output() string { return p.out }

// Find returns the path's first recorded call with the given name, or
// nil.
func (p *SymPath) Find(name string) *trace.Call {
	for i := range p.t.Seq {
		if p.t.Seq[i].Kind == trace.CallGeneric && p.t.Seq[i].Name == name {
			return &p.t.Seq[i]
		}
	}
	return nil
}

// Ret returns the recorded decision of a named fork point, and whether
// the path evaluated it at all.
func (p *SymPath) Ret(name string) (val, evaluated bool) {
	c := p.Find(name)
	if c == nil || !c.HasRet {
		return false, false
	}
	return c.Ret, true
}

// Var returns the path's packet variable with the given name (as named
// by the Drive function).
func (p *SymPath) Var(name string) sym.Var { return p.d.vars[name] }

// HVar returns handle h's model variable with the given name.
func (p *SymPath) HVar(h int, name string) sym.Var { return p.d.handles[h][name] }

// HasHandle reports whether h was minted on this path.
func (p *SymPath) HasHandle(h int) bool {
	_, ok := p.d.handles[h]
	return ok
}

// EntailsAll reports whether the path constraints entail every wanted
// atom, returning the first failing atom otherwise.
func (p *SymPath) EntailsAll(want ...sym.Atom) (bool, sym.Atom) {
	ok, failing := p.solver.EntailsAll(p.t.Constraints, want)
	return ok, failing
}

// VerifySym runs the declared NF logic through the shared symbolic
// pipeline: exhaustive symbolic execution of Drive, then the lazy
// checks — single output action per path over the declared vocabulary
// (P4), the discipline violations the models raised (P2), and the
// declared per-path semantic specification (P1).
func VerifySym(s SymSpec) (*Report, error) {
	if s.Drive == nil || s.Spec == nil {
		return nil, errors.New("nfkit: symbolic spec needs Drive and Spec")
	}
	if len(s.Outputs) == 0 {
		return nil, errors.New("nfkit: symbolic spec declares no output actions")
	}
	res, err := symbex.Explore(func(m *symbex.Machine) {
		d := newSymDriver(m, s.Outputs)
		s.Drive(d)
		m.AttachMeta(d)
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{NF: s.NF, Paths: len(res.Paths), Tasks: res.TraceCount()}
	rep.P2Violations = res.Violations
	outSet := make(map[string]bool, len(s.Outputs))
	for _, o := range s.Outputs {
		outSet[o] = true
	}
	var solver sym.Solver
	for i, t := range res.Paths {
		d, ok := t.Meta.(*SymDriver)
		if !ok {
			return nil, fmt.Errorf("nfkit: path %d carries no driver vocabulary", i)
		}
		// Output discipline (P4): exactly one declared output action.
		outs := 0
		var outName string
		for j := range t.Seq {
			c := &t.Seq[j]
			if c.Kind == trace.CallGeneric && outSet[c.Name] {
				outs++
				outName = c.Name
			}
		}
		if outs != 1 {
			rep.P4Violations = append(rep.P4Violations,
				fmt.Sprintf("path %d: %d output actions", i, outs))
			continue
		}
		// P1: the NF's semantic decision tree.
		if err := s.Spec(&SymPath{t: t, d: d, out: outName, solver: &solver}); err != nil {
			rep.P1Failures = append(rep.P1Failures, fmt.Sprintf("path %d: %v", i, err))
		}
	}
	return rep, nil
}

// DropOutput is the output-action name VerifyReasons treats as the
// drop class; every NF in this repo names its drop output this way.
const DropOutput = "drop"

// ReasonReport summarizes the taxonomy/path cross-check: how many
// enumerated paths each declared reason labels, and every way the
// mapping failed to line up.
type ReasonReport struct {
	NF    string
	Paths int
	// PathsPerReason[id] is the number of enumerated paths classified
	// onto reason id, indexed like the declared set.
	PathsPerReason []int
	// Failures lists every cross-check violation: unclassifiable paths,
	// out-of-taxonomy IDs, drop/forward class mismatches, and declared
	// reasons labeling no path (stale taxonomy entries).
	Failures []string
}

// OK reports whether the taxonomy is exactly the verified paths' image.
func (r *ReasonReport) OK() bool { return r.Paths > 0 && len(r.Failures) == 0 }

// Summary renders the report.
func (r *ReasonReport) Summary() string {
	status := "REASONS CONSISTENT"
	if !r.OK() {
		status = "REASONS INCONSISTENT"
	}
	return fmt.Sprintf("%s (%s): %d paths over %d reasons, %d failures",
		status, r.NF, r.Paths, len(r.PathsPerReason), len(r.Failures))
}

// VerifyReasons cross-checks a declared reason taxonomy against the
// NF's enumerated symbolic paths. It re-runs the same exploration as
// VerifySym and demands, per path: the spec's PathReason classifies it
// (totality), the returned ID is declared in set, and the path's class
// matches the reason's — a path whose single output action is
// DropOutput must map to a Drop reason, every other path to a non-Drop
// one. Finally every declared reason must label at least one path, so
// a reason no verified path can produce (dead taxonomy) fails too.
//
// Paths that fail the single-output rule are reported as failures here
// as well (they cannot be classified); run VerifySym for the full P4
// diagnosis.
func VerifyReasons(s SymSpec, set *telemetry.ReasonSet) (*ReasonReport, error) {
	if s.Drive == nil {
		return nil, errors.New("nfkit: symbolic spec needs Drive")
	}
	if s.PathReason == nil {
		return nil, errors.New("nfkit: symbolic spec declares no PathReason classifier")
	}
	if set == nil {
		return nil, errors.New("nfkit: no reason taxonomy to cross-check")
	}
	if len(s.Outputs) == 0 {
		return nil, errors.New("nfkit: symbolic spec declares no output actions")
	}
	res, err := symbex.Explore(func(m *symbex.Machine) {
		d := newSymDriver(m, s.Outputs)
		s.Drive(d)
		m.AttachMeta(d)
	})
	if err != nil {
		return nil, err
	}
	rep := &ReasonReport{NF: s.NF, Paths: len(res.Paths), PathsPerReason: make([]int, set.Len())}
	outSet := make(map[string]bool, len(s.Outputs))
	for _, o := range s.Outputs {
		outSet[o] = true
	}
	var solver sym.Solver
	for i, t := range res.Paths {
		d, ok := t.Meta.(*SymDriver)
		if !ok {
			return nil, fmt.Errorf("nfkit: path %d carries no driver vocabulary", i)
		}
		outs := 0
		var outName string
		for j := range t.Seq {
			c := &t.Seq[j]
			if c.Kind == trace.CallGeneric && outSet[c.Name] {
				outs++
				outName = c.Name
			}
		}
		if outs != 1 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("path %d: %d output actions, cannot classify", i, outs))
			continue
		}
		id, err := s.PathReason(&SymPath{t: t, d: d, out: outName, solver: &solver})
		if err != nil {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("path %d (%s): unclassifiable: %v", i, outName, err))
			continue
		}
		if int(id) >= set.Len() {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("path %d (%s): reason id %d not declared in taxonomy %q",
					i, outName, id, set.NF()))
			continue
		}
		rep.PathsPerReason[id]++
		isDropPath := outName == DropOutput
		if isDropPath && !set.IsDrop(id) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("path %d drops but reason %q is not drop-class", i, set.Name(id)))
		}
		if !isDropPath && set.IsDrop(id) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("path %d outputs %s but reason %q is drop-class", i, outName, set.Name(id)))
		}
	}
	for id, n := range rep.PathsPerReason {
		if n == 0 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("declared reason %q labels no enumerated path (stale taxonomy entry)",
					set.Name(telemetry.ReasonID(id))))
		}
	}
	sort.Strings(rep.Failures)
	return rep, nil
}
