package nfkit

import (
	"errors"
	"fmt"

	"vignat/internal/vigor/sym"
	"vignat/internal/vigor/symbex"
	"vignat/internal/vigor/trace"
)

// SymSpec is an NF's symbolic-verification declaration: the output
// vocabulary, a Drive function running the NF's stateless logic once
// against a SymDriver-backed Env, and the per-path semantic check.
// VerifySym derives the whole proof run from it — exhaustive path
// enumeration, the single-output (P4) rule over the declared outputs,
// the P2 discipline violations the driver collected, and the Spec's P1
// judgment with solver entailment — so a new NF's verification binding
// is this value, not an engine integration.
type SymSpec struct {
	// NF names the proof in reports.
	NF string
	// Outputs are the NF's declared output actions; every feasible
	// path must emit exactly one.
	Outputs []string
	// Drive builds the NF's symbolic Env over d and invokes the
	// stateless logic exactly once.
	Drive func(d *SymDriver)
	// Spec checks one feasible path against the NF's semantic
	// specification (P1), returning an error describing the violation.
	Spec func(p *SymPath) error
}

// Report summarizes one NF's verification, in the shape every per-NF
// report already had.
type Report struct {
	NF           string
	Paths        int
	Tasks        int
	P1Failures   []string
	P2Violations []string
	P4Violations []string
}

// OK reports whether the proof is complete.
func (r *Report) OK() bool {
	return r.Paths > 0 && len(r.P1Failures) == 0 && len(r.P2Violations) == 0 && len(r.P4Violations) == 0
}

// Summary renders the report.
func (r *Report) Summary() string {
	status := "PROOF COMPLETE"
	if !r.OK() {
		status = "PROOF FAILED"
	}
	return fmt.Sprintf("%s (%s): %d paths, %d tasks; P1: %d, P2: %d, P4: %d",
		status, r.NF, r.Paths, r.Tasks, len(r.P1Failures), len(r.P2Violations), len(r.P4Violations))
}

// SymPath is one feasible execution path as the Spec sees it: the
// trace, the path's vocabulary (via the driver that produced it), and
// entailment over the path constraints.
type SymPath struct {
	t      *trace.Trace
	d      *SymDriver
	out    string
	solver *sym.Solver
}

// Output returns the path's single output action.
func (p *SymPath) Output() string { return p.out }

// Find returns the path's first recorded call with the given name, or
// nil.
func (p *SymPath) Find(name string) *trace.Call {
	for i := range p.t.Seq {
		if p.t.Seq[i].Kind == trace.CallGeneric && p.t.Seq[i].Name == name {
			return &p.t.Seq[i]
		}
	}
	return nil
}

// Ret returns the recorded decision of a named fork point, and whether
// the path evaluated it at all.
func (p *SymPath) Ret(name string) (val, evaluated bool) {
	c := p.Find(name)
	if c == nil || !c.HasRet {
		return false, false
	}
	return c.Ret, true
}

// Var returns the path's packet variable with the given name (as named
// by the Drive function).
func (p *SymPath) Var(name string) sym.Var { return p.d.vars[name] }

// HVar returns handle h's model variable with the given name.
func (p *SymPath) HVar(h int, name string) sym.Var { return p.d.handles[h][name] }

// HasHandle reports whether h was minted on this path.
func (p *SymPath) HasHandle(h int) bool {
	_, ok := p.d.handles[h]
	return ok
}

// EntailsAll reports whether the path constraints entail every wanted
// atom, returning the first failing atom otherwise.
func (p *SymPath) EntailsAll(want ...sym.Atom) (bool, sym.Atom) {
	ok, failing := p.solver.EntailsAll(p.t.Constraints, want)
	return ok, failing
}

// VerifySym runs the declared NF logic through the shared symbolic
// pipeline: exhaustive symbolic execution of Drive, then the lazy
// checks — single output action per path over the declared vocabulary
// (P4), the discipline violations the models raised (P2), and the
// declared per-path semantic specification (P1).
func VerifySym(s SymSpec) (*Report, error) {
	if s.Drive == nil || s.Spec == nil {
		return nil, errors.New("nfkit: symbolic spec needs Drive and Spec")
	}
	if len(s.Outputs) == 0 {
		return nil, errors.New("nfkit: symbolic spec declares no output actions")
	}
	res, err := symbex.Explore(func(m *symbex.Machine) {
		d := newSymDriver(m, s.Outputs)
		s.Drive(d)
		m.AttachMeta(d)
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{NF: s.NF, Paths: len(res.Paths), Tasks: res.TraceCount()}
	rep.P2Violations = res.Violations
	outSet := make(map[string]bool, len(s.Outputs))
	for _, o := range s.Outputs {
		outSet[o] = true
	}
	var solver sym.Solver
	for i, t := range res.Paths {
		d, ok := t.Meta.(*SymDriver)
		if !ok {
			return nil, fmt.Errorf("nfkit: path %d carries no driver vocabulary", i)
		}
		// Output discipline (P4): exactly one declared output action.
		outs := 0
		var outName string
		for j := range t.Seq {
			c := &t.Seq[j]
			if c.Kind == trace.CallGeneric && outSet[c.Name] {
				outs++
				outName = c.Name
			}
		}
		if outs != 1 {
			rep.P4Violations = append(rep.P4Violations,
				fmt.Sprintf("path %d: %d output actions", i, outs))
			continue
		}
		// P1: the NF's semantic decision tree.
		if err := s.Spec(&SymPath{t: t, d: d, out: outName, solver: &solver}); err != nil {
			rep.P1Failures = append(rep.P1Failures, fmt.Sprintf("path %d: %v", i, err))
		}
	}
	return rep, nil
}
