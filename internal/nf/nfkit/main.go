package nfkit

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"vignat/internal/ctlplane"
	"vignat/internal/dpdk"
	"vignat/internal/libvig"
	"vignat/internal/nf"
)

// This file is the derived demo-binary scaffolding: the flags, port
// arrangement, pipeline wiring, wire-side drive loop, and end-of-run
// accounting that cmd/vignat, cmd/viglb, and cmd/vigpol each used to
// hand-roll (~150 duplicated lines per binary). A binary now declares
// its NF construction, its traffic, and its NF-specific report; the
// kit runs the engine.

// Options are the shared engine flags every demo binary exposes:
// -packets, -timeout, -capacity, -shards, -workers, -burst, -metrics,
// -amortized, plus the transport selection (-transport with its
// address flags and -duration). Workers is resolved (0 → one per
// shard) and validated before Build runs.
type Options struct {
	Packets  int
	Timeout  time.Duration
	Capacity int
	Shards   int
	Workers  int
	Burst    int
	Metrics  string
	Amortize bool
	// Telemetry and TraceSample mirror nf.Config's fields: telemetry 1
	// enables the per-worker histograms and trace ring, -1 forces them
	// off, 0 defers to VIGNAT_TELEMETRY; the sample is the trace ring's
	// 1-in-N period.
	Telemetry   int
	TraceSample int
	// Transport picks the packet-I/O backend: "mem" (default) drives
	// the NF with the built-in traffic over in-memory rings on a
	// virtual clock; "udp" and "unix" run the NF as a daemon on real
	// kernel sockets and the system clock, processing whatever a peer
	// process sends.
	Transport string
	// IntLocal/IntPeer and ExtLocal/ExtPeer are the wire addresses of
	// the internal and external ports (udp: "host:port" with queue q
	// bound at port+q; unix: a path prefix with queue q at
	// "<prefix>.q<q>").
	IntLocal, IntPeer, ExtLocal, ExtPeer string
	// Duration bounds a wire-mode run (0 = run until SIGINT/SIGTERM).
	Duration time.Duration
	// Control mounts the /control/v1 management API on the metrics
	// mux (wire mode only; requires -metrics).
	Control bool
	// MaxWorkers sizes the wire transports' queue pairs beyond the
	// initial worker count, leaving headroom for a live reshard to
	// grow (0 = exactly Workers queues, no growth).
	MaxWorkers int
}

// App is one demo binary's declaration. Register NF-specific flags
// with the standard flag package before calling Main; parsing happens
// inside.
type App struct {
	// Name is the binary name (errors, metrics source).
	Name string
	// DefaultCapacity seeds the shared -capacity flag.
	DefaultCapacity int
	// Build constructs the NF and its traffic once flags are parsed.
	// The clock is the one the engine will drive expiry with: a
	// VirtualClock advanced by the in-memory harness, or the system
	// clock in wire mode — build the NF against the interface, not a
	// concrete clock.
	Build func(o *Options, clock libvig.Clock) (*Run, error)
}

// Run is what an App's Build hands the kit to drive.
type Run struct {
	// NF is the (usually sharded) network function.
	NF nf.NF
	// ShardOf pre-steers the traffic per worker, standing in for the
	// NIC's hardware RSS hash on the wire side.
	ShardOf func(frame []byte, fromInternal bool) int
	// Snapshot is the concurrency-safe stats surface (metrics, report).
	Snapshot func() nf.Stats
	// Frames is the traffic, delivered round-robin, one clock
	// microsecond apart.
	Frames [][]byte
	// FromInternal says which side the traffic source feeds.
	FromInternal bool
	// InternalPortID and ExternalPortID name the two ports.
	InternalPortID, ExternalPortID uint16
	// Banner is printed before the run.
	Banner string
	// OnDelivered, when set, observes every frame the far side drains
	// (called from worker w's drive goroutine — index per-worker state
	// only).
	OnDelivered func(worker int, frame []byte)
	// Mid, when set, splits the run in two halves and runs between
	// them with no traffic in flight (backend churn and the like).
	Mid func() error
	// Backends, when set, is the balancer surface the control plane's
	// lb verbs drive (lb.Sharded implements it).
	Backends ctlplane.BackendManager
	// Rate, when set, is the policer surface behind the control
	// plane's resize verb (policer.Sharded implements it).
	Rate ctlplane.RateManager
	// Report writes the NF-specific end-of-run summary and checks its
	// invariants; returning an error fails the binary.
	Report func(w io.Writer, r *RunReport) error
}

// RunReport is what the kit measured, handed to the App's Report.
type RunReport struct {
	Elapsed  time.Duration
	Now      libvig.Time
	Pipe     nf.PipelineStats
	Snapshot nf.Stats
}

// Mpps renders packets-per-second in millions for n packets over the
// run — the throughput line every report prints.
func (r *RunReport) Mpps(n uint64) float64 {
	return float64(n) / r.Elapsed.Seconds() / 1e6
}

// Main parses flags, builds the App's NF, and drives it on the shared
// engine: per-worker RSS queue pairs, run-to-completion polling from
// one goroutine per worker, TX drain back into the pools, and the
// engine/mbuf accounting every run must end with.
func Main(app App) {
	o := &Options{}
	flag.IntVar(&o.Packets, "packets", 200000, "packets to push through the NF")
	flag.DurationVar(&o.Timeout, "timeout", 2*time.Second, "state inactivity expiry (Texp)")
	flag.IntVar(&o.Capacity, "capacity", app.DefaultCapacity, "state capacity (CAP)")
	flag.IntVar(&o.Shards, "shards", 1, "NF shards (disjoint state partitions)")
	flag.IntVar(&o.Workers, "workers", 0, "run-to-completion workers / RSS queue pairs (0 = one per shard)")
	flag.IntVar(&o.Burst, "burst", nf.DefaultBurst, "RX/TX burst size")
	flag.StringVar(&o.Metrics, "metrics", "", "serve StatsSnapshot over HTTP/expvar on this address (e.g. :9090)")
	flag.BoolVar(&o.Amortize, "amortized", false, "engine-level once-per-poll expiry instead of per-packet")
	flag.IntVar(&o.Telemetry, "telemetry", 0, "per-worker latency histograms + trace ring: 1 on, -1 off, 0 defer to VIGNAT_TELEMETRY")
	flag.IntVar(&o.TraceSample, "trace-sample", 0, "trace ring sampling period, 1 record per N packets (0 = default, negative = histograms only)")
	flag.StringVar(&o.Transport, "transport", "mem", "packet I/O backend: mem (in-memory harness), udp, unix")
	flag.StringVar(&o.IntLocal, "int-local", "", "wire mode: internal port's local address (udp host:port / unix path prefix)")
	flag.StringVar(&o.IntPeer, "int-peer", "", "wire mode: where the internal port transmits")
	flag.StringVar(&o.ExtLocal, "ext-local", "", "wire mode: external port's local address")
	flag.StringVar(&o.ExtPeer, "ext-peer", "", "wire mode: where the external port transmits")
	flag.DurationVar(&o.Duration, "duration", 0, "wire mode: stop after this long (0 = until SIGINT/SIGTERM)")
	flag.BoolVar(&o.Control, "control", false, "wire mode: mount the /control/v1 management API on the metrics mux (requires -metrics)")
	flag.IntVar(&o.MaxWorkers, "max-workers", 0, "wire mode: queue pairs to provision per port, headroom for live worker growth (0 = workers)")
	flag.Parse()
	if err := run(app, o); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", app.Name, err)
		os.Exit(1)
	}
}

func run(app App, o *Options) error {
	if o.Shards < 1 {
		return fmt.Errorf("shard count must be at least 1")
	}
	if o.Burst == 0 {
		o.Burst = nf.DefaultBurst // same convention as nf.NewPipeline,
		// which also rejects negative bursts before the drive loop runs
	}
	if o.Workers == 0 {
		o.Workers = o.Shards
	}
	if o.Workers < 1 || o.Workers > o.Shards {
		return fmt.Errorf("workers must be in [1,%d] (one queue pair per worker, shards spread across workers)", o.Shards)
	}
	switch o.Transport {
	case "", "mem":
		if o.Control {
			return fmt.Errorf("-control needs a wire transport (the in-memory harness drives workers externally, so live worker changes cannot apply)")
		}
	case "udp", "unix":
		return runWire(app, o)
	default:
		return fmt.Errorf("unknown transport %q (want mem, udp, or unix)", o.Transport)
	}

	clock := libvig.NewVirtualClock(0)
	b, err := app.Build(o, clock)
	if err != nil {
		return err
	}
	switch {
	case b.NF == nil:
		return fmt.Errorf("app declares no NF")
	case b.ShardOf == nil:
		return fmt.Errorf("app declares no steering")
	case b.Snapshot == nil:
		return fmt.Errorf("app declares no stats snapshot")
	case b.Report == nil:
		return fmt.Errorf("app declares no report")
	case len(b.Frames) == 0:
		return fmt.Errorf("no traffic frames declared")
	}

	// Two multi-queue ports, one queue pair and one mempool per worker.
	intPort, intPools, err := nf.NewWorkerPorts(b.InternalPortID, o.Workers, 4096/o.Workers)
	if err != nil {
		return err
	}
	extPort, extPools, err := nf.NewWorkerPorts(b.ExternalPortID, o.Workers, 4096/o.Workers)
	if err != nil {
		return err
	}
	pipe, err := nf.NewPipeline(b.NF, nf.Config{
		Internal:        intPort,
		External:        extPort,
		Burst:           o.Burst,
		Workers:         o.Workers,
		Clock:           clock,
		AmortizedExpiry: o.Amortize,
		Telemetry:       o.Telemetry,
		TraceSample:     o.TraceSample,
	})
	if err != nil {
		return err
	}

	if o.Metrics != "" {
		m, err := nf.ServeMetrics(o.Metrics, nf.SourceOf(app.Name, b.NF, b.Snapshot, pipe))
		if err != nil {
			return err
		}
		defer m.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars, profiles at /debug/pprof/, trace at /debug/trace)\n", m.Addr())
	}

	if b.Banner != "" {
		fmt.Println(b.Banner)
	}

	// The source and sink sides of the box.
	rxPort, txPort := extPort, intPort
	if b.FromInternal {
		rxPort, txPort = intPort, extPort
	}

	// Pre-steer the packet sequence per worker, so each worker's wire
	// driver delivers only frames RSS places on its own queue (the
	// NIC's RSS hash is hardware, not a per-packet software cost).
	workerOf := make([]int, len(b.Frames))
	for f := range b.Frames {
		workerOf[f] = b.ShardOf(b.Frames[f], b.FromInternal) % o.Workers
	}
	lists := make([][]int, o.Workers)
	for i := 0; i < o.Packets; i++ {
		f := i % len(b.Frames)
		lists[workerOf[f]] = append(lists[workerOf[f]], f)
	}

	// driveHalf runs [half, half+1)/halves of each worker's list, one
	// goroutine per worker: deliver a burst onto the worker's queue,
	// one run-to-completion poll, drain transmitted frames back into
	// their pools.
	halves := 1
	if b.Mid != nil {
		halves = 2
	}
	driveHalf := func(half int) error {
		var wg sync.WaitGroup
		errs := make([]error, o.Workers)
		for w := 0; w < o.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				drain := make([]*dpdk.Mbuf, o.Burst)
				list := lists[w]
				lo, hi := half*len(list)/halves, (half+1)*len(list)/halves
				for off := lo; off < hi; off += o.Burst {
					c := o.Burst
					if off+c > hi {
						c = hi - off
					}
					for j := 0; j < c; j++ {
						clock.Advance(1000) // 1 µs between arrivals
						rxPort.DeliverRxQueue(w, b.Frames[list[off+j]], clock.Now())
					}
					if _, err := pipe.PollWorker(w); err != nil {
						errs[w] = err
						return
					}
					for {
						k := txPort.DrainTxQueue(w, drain)
						if k == 0 {
							break
						}
						for i := 0; i < k; i++ {
							if b.OnDelivered != nil {
								b.OnDelivered(w, drain[i].Data)
							}
							if err := drain[i].Pool().Free(drain[i]); err != nil {
								errs[w] = err
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	for half := 0; half < halves; half++ {
		if half == 1 {
			if err := b.Mid(); err != nil {
				return err
			}
		}
		if err := driveHalf(half); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	rep := &RunReport{Elapsed: elapsed, Now: clock.Now(), Pipe: pipe.Stats(), Snapshot: b.Snapshot()}
	if err := b.Report(os.Stdout, rep); err != nil {
		return err
	}
	nf.FprintEngineReport(os.Stdout, rep.Pipe, rep.Snapshot)
	rs, ts := rxPort.Stats(), txPort.Stats()
	fmt.Printf("  rx port: rx=%d rx_dropped=%d | tx port: tx=%d tx_dropped=%d\n",
		rs.RxPackets, rs.RxDropped, ts.TxPackets, ts.TxDropped)
	if err := nf.MbufAccounting(rxPort.RxQueueLen()+txPort.TxQueueLen(),
		append(append([]*dpdk.Mempool(nil), intPools...), extPools...)...); err != nil {
		return err
	}
	fmt.Println("mbuf accounting clean (no leaks)")
	return nil
}

// wireAddresser is what both socket transports expose for printing
// where each queue actually listens (ephemeral UDP ports resolve at
// bind time).
type wireAddresser interface{ LocalAddr(q int) string }

func newWireTransport(kind string, queues int, local, peer string, clock libvig.Clock) (dpdk.Transport, error) {
	cfg := dpdk.SocketConfig{Queues: queues, Local: local, Peer: peer, Clock: clock}
	switch kind {
	case "udp":
		return dpdk.NewUDPTransport(cfg)
	case "unix":
		return dpdk.NewUnixTransport(cfg)
	}
	return nil, fmt.Errorf("unknown transport %q", kind)
}

// wireIdleWait is how long an idle wire-mode worker parks in select(2)
// per poll. Long enough to burn no measurable CPU between packets,
// short enough that expiry sweeps stay fresh.
const wireIdleWait = 2 * time.Millisecond

// runWire runs the NF as a daemon over kernel sockets: the peer
// process is the traffic source and sink, the system clock drives
// expiry, and the run ends on SIGINT/SIGTERM or -duration. The App's
// Report is skipped — its invariants describe the built-in traffic,
// and on a real wire the peer decides what arrives — but the engine
// report, port counters, and mbuf accounting still print and check.
func runWire(app App, o *Options) error {
	clock := libvig.NewSystemClock()
	b, err := app.Build(o, clock)
	if err != nil {
		return err
	}
	switch {
	case b.NF == nil:
		return fmt.Errorf("app declares no NF")
	case b.ShardOf == nil:
		return fmt.Errorf("app declares no steering")
	case b.Snapshot == nil:
		return fmt.Errorf("app declares no stats snapshot")
	}
	if o.Control && o.Metrics == "" {
		return fmt.Errorf("-control needs -metrics (the management API mounts on the metrics mux)")
	}
	// Queue pairs are provisioned up front (the wire peer binds to
	// them); MaxWorkers leaves headroom for the workers verb to grow
	// into.
	queues := o.MaxWorkers
	if queues == 0 {
		queues = o.Workers
	}
	if queues < o.Workers {
		return fmt.Errorf("-max-workers %d below -workers %d", queues, o.Workers)
	}

	newSide := func(name string, id uint16, local, peer string) (*dpdk.Port, []*dpdk.Mempool, error) {
		tr, err := newWireTransport(o.Transport, queues, local, peer, clock)
		if err != nil {
			return nil, nil, fmt.Errorf("%s port: %w (set -%s-local / -%s-peer)", name, err, name[:3], name[:3])
		}
		pools := make([]*dpdk.Mempool, queues)
		for w := range pools {
			if pools[w], err = dpdk.NewMempool(4096 / queues); err != nil {
				_ = tr.Close()
				return nil, nil, err
			}
		}
		port, err := dpdk.NewPortOn(id, tr, pools)
		if err != nil {
			_ = tr.Close()
			return nil, nil, err
		}
		return port, pools, nil
	}
	intPort, intPools, err := newSide("internal", b.InternalPortID, o.IntLocal, o.IntPeer)
	if err != nil {
		return err
	}
	defer intPort.Close()
	extPort, extPools, err := newSide("external", b.ExternalPortID, o.ExtLocal, o.ExtPeer)
	if err != nil {
		return err
	}
	defer extPort.Close()

	pipe, err := nf.NewPipeline(b.NF, nf.Config{
		Internal:        intPort,
		External:        extPort,
		Burst:           o.Burst,
		Workers:         o.Workers,
		Clock:           clock,
		AmortizedExpiry: o.Amortize,
		Telemetry:       o.Telemetry,
		TraceSample:     o.TraceSample,
		IdleWait:        wireIdleWait,
	})
	if err != nil {
		return err
	}

	if o.Metrics != "" {
		m, err := nf.ServeMetrics(o.Metrics, nf.SourceOf(app.Name, b.NF, b.Snapshot, pipe))
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = m.Shutdown(ctx)
		}()
		if o.Control {
			ctl, err := ctlplane.New(ctlplane.Config{
				Pipeline:   pipe,
				Clock:      clock,
				Backends:   b.Backends,
				Rate:       b.Rate,
				MaxWorkers: queues,
			})
			if err != nil {
				return err
			}
			ctl.Mount(m)
			fmt.Printf("control: http://%s/control/v1/status\n", m.Addr())
		}
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars, profiles at /debug/pprof/, trace at /debug/trace)\n", m.Addr())
	}
	if b.Banner != "" {
		fmt.Println(b.Banner)
	}
	for _, side := range []struct {
		name string
		port *dpdk.Port
	}{{"internal", intPort}, {"external", extPort}} {
		if a, ok := side.port.Transport().(wireAddresser); ok {
			addrs := make([]string, queues)
			for q := range addrs {
				addrs[q] = a.LocalAddr(q)
			}
			fmt.Printf("%s port: %s %s\n", side.name, o.Transport, strings.Join(addrs, " "))
		}
	}

	// The pipeline owns the drive goroutines (Start/Stop), which is
	// what lets the workers verb swap the worker set live.
	start := time.Now()
	if err := pipe.Start(); err != nil {
		return err
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var expired <-chan time.Time
	if o.Duration > 0 {
		expired = time.After(o.Duration)
	}
	select {
	case <-sigc:
	case <-expired:
	}
	elapsed := time.Since(start)
	if err := pipe.Stop(); err != nil {
		return err
	}

	ps := pipe.Stats()
	fmt.Printf("ran %.1fs on %s transport: %.3f Mpps forwarded\n",
		elapsed.Seconds(), o.Transport, float64(ps.TxPackets)/elapsed.Seconds()/1e6)
	nf.FprintEngineReport(os.Stdout, ps, b.Snapshot())
	is, es := intPort.Stats(), extPort.Stats()
	fmt.Printf("  internal: rx=%d rx_dropped=%d tx=%d tx_dropped=%d | external: rx=%d rx_dropped=%d tx=%d tx_dropped=%d\n",
		is.RxPackets, is.RxDropped, is.TxPackets, is.TxDropped,
		es.RxPackets, es.RxDropped, es.TxPackets, es.TxDropped)
	// Socket transports hold no mbufs at rest: everything RxBurst
	// allocated was transmitted-and-freed or freed on drop, so the
	// pools must be whole again.
	if err := nf.MbufAccounting(0,
		append(append([]*dpdk.Mempool(nil), intPools...), extPools...)...); err != nil {
		return err
	}
	fmt.Println("mbuf accounting clean (no leaks)")
	return nil
}
