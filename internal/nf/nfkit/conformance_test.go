// Conformance of the kit-derived Sharded composition, table-driven
// over all four stateful NFs: wire-side RSS steering agrees with the
// declared ShardOf (a frame delivered through the port's RSS hash
// lands on — and creates state in — exactly the shard the declaration
// names), both directions of a session steer to the same shard (the
// reply is looked up, not re-admitted), shards are isolated (state
// totals decompose exactly by steering), and the counted stats surface
// aggregates per-shard cells while being scraped concurrently with
// traffic. Run under -race in CI: the workers poll from their own
// goroutines while a scraper hammers the snapshots.
package nfkit_test

import (
	"sync"
	"testing"
	"time"

	"vignat/internal/dpdk"
	"vignat/internal/firewall"
	"vignat/internal/flow"
	"vignat/internal/lb"
	"vignat/internal/libvig"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/policer"
)

const (
	confShards   = 4
	confSessions = 64
	confTimeout  = time.Minute
)

// shardedNF is what every kit-derived sharded NF exposes (promoted
// from nfkit.Sharded and nf.CountedShards).
type shardedNF interface {
	nf.Sharder
	StatsSnapshot() nf.Stats
	ShardStatsSnapshot(i int) nf.Stats
}

type shardCase struct {
	name string
	// build constructs the 4-shard NF and a per-shard live-state drill.
	build func(t *testing.T, clock libvig.Clock) (shardedNF, func(shard int) int)
	// frame crafts session i's client-side frame.
	frame func(i int) []byte
	// fromInternal is the side the client-side frames enter on.
	fromInternal bool
}

func craft(id flow.ID) []byte {
	s := &netstack.FrameSpec{ID: id}
	return netstack.Craft(make([]byte, netstack.FrameLen(s)), s)
}

var confVIP = flow.MakeAddr(198, 18, 10, 10)

func shardCases() []shardCase {
	return []shardCase{
		{
			name: "vignat",
			build: func(t *testing.T, clock libvig.Clock) (shardedNF, func(int) int) {
				n, err := nat.NewSharded(nat.Config{
					Capacity: 4 * confSessions, Timeout: confTimeout,
					ExternalIP: flow.MakeAddr(198, 18, 1, 1), PortBase: 1000,
					InternalPort: 0, ExternalPort: 1,
				}, clock, confShards)
				if err != nil {
					t.Fatal(err)
				}
				return n, func(i int) int { return n.ShardNAT(i).Table().Size() }
			},
			frame: func(i int) []byte {
				return craft(flow.ID{
					SrcIP: flow.MakeAddr(10, 0, byte(i>>8), byte(1+i)), SrcPort: uint16(20000 + i),
					DstIP: flow.MakeAddr(93, 184, 216, 34), DstPort: 80, Proto: flow.UDP,
				})
			},
			fromInternal: true,
		},
		{
			name: "firewall",
			build: func(t *testing.T, clock libvig.Clock) (shardedNF, func(int) int) {
				fw, err := firewall.NewSharded(4*confSessions, confTimeout, clock, confShards)
				if err != nil {
					t.Fatal(err)
				}
				return fw, func(i int) int { return fw.ShardFirewall(i).Sessions() }
			},
			frame: func(i int) []byte {
				return craft(flow.ID{
					SrcIP: flow.MakeAddr(10, 0, byte(i>>8), byte(1+i)), SrcPort: uint16(20000 + i),
					DstIP: flow.MakeAddr(93, 184, 216, 34), DstPort: 80, Proto: flow.TCP,
				})
			},
			fromInternal: true,
		},
		{
			name: "viglb",
			build: func(t *testing.T, clock libvig.Clock) (shardedNF, func(int) int) {
				balancer, err := lb.NewSharded(lb.Config{
					VIP: confVIP, VIPPort: 443, Capacity: 4 * confSessions,
					Timeout: confTimeout, MaxBackends: 4,
				}, clock, confShards)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					if _, err := balancer.AddBackend(flow.MakeAddr(10, 1, 0, byte(10+i)), clock.Now()); err != nil {
						t.Fatal(err)
					}
				}
				return balancer, func(i int) int { return balancer.ShardBalancer(i).Flows() }
			},
			frame: func(i int) []byte {
				return craft(flow.ID{
					SrcIP: flow.MakeAddr(203, 0, byte(i>>8), byte(1+i)), SrcPort: uint16(20000 + i),
					DstIP: confVIP, DstPort: 443, Proto: flow.UDP,
				})
			},
			fromInternal: false, // clients face the external port
		},
		{
			name: "vigpol",
			build: func(t *testing.T, clock libvig.Clock) (shardedNF, func(int) int) {
				pol, err := policer.NewSharded(policer.Config{
					Rate: 1 << 20, Burst: 1 << 20, Capacity: 4 * confSessions, Timeout: confTimeout,
				}, clock, confShards)
				if err != nil {
					t.Fatal(err)
				}
				return pol, func(i int) int { return pol.ShardPolicer(i).Subscribers() }
			},
			frame: func(i int) []byte {
				return craft(flow.ID{
					SrcIP: flow.MakeAddr(198, 51, 100, 7), SrcPort: 443,
					DstIP: flow.MakeAddr(10, byte(1+i>>8), byte(i), byte(1+i)), DstPort: 8080, Proto: flow.UDP,
				})
			},
			fromInternal: false, // downstream traffic enters upstream-side
		},
	}
}

// confRig is the 4-worker multi-queue pipeline stand.
type confRig struct {
	intPort, extPort *dpdk.Port
	pools            []*dpdk.Mempool
	pipe             *nf.Pipeline
}

func buildConfRig(t *testing.T, s shardedNF, clock libvig.Clock) *confRig {
	t.Helper()
	r := &confRig{}
	mkPort := func(id uint16) *dpdk.Port {
		ps := make([]*dpdk.Mempool, confShards)
		for q := range ps {
			p, err := dpdk.NewMempool(256)
			if err != nil {
				t.Fatal(err)
			}
			ps[q] = p
			r.pools = append(r.pools, p)
		}
		port, err := dpdk.NewMultiQueuePort(id, confShards, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, ps)
		if err != nil {
			t.Fatal(err)
		}
		return port
	}
	r.intPort, r.extPort = mkPort(0), mkPort(1)
	var err error
	r.pipe, err = nf.NewPipeline(s, nf.Config{
		Internal: r.intPort, External: r.extPort, Workers: confShards, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// pollAllWorkers runs every worker from its own goroutine — the
// deployment shape — while the caller may scrape concurrently.
func (r *confRig) pollAllWorkers(t *testing.T) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, confShards)
	for w := 0; w < confShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := r.pipe.PollWorker(w); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// drainAll empties a port's TX queues, returning the frames.
func drainAll(t *testing.T, port *dpdk.Port) [][]byte {
	t.Helper()
	drain := make([]*dpdk.Mbuf, 64)
	var out [][]byte
	for {
		k := port.DrainTx(drain)
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			out = append(out, append([]byte(nil), drain[i].Data...))
			if err := drain[i].Pool().Free(drain[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// reverseFrame crafts the return-direction frame of an output frame:
// the reverse tuple, as the far end would answer.
func reverseFrame(t *testing.T, out []byte) []byte {
	t.Helper()
	var p netstack.Packet
	if err := p.Parse(out); err != nil {
		t.Fatal(err)
	}
	return craft(p.FlowID().Reverse())
}

func TestShardedConformanceAllNFs(t *testing.T) {
	for _, tc := range shardCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			clock := libvig.NewVirtualClock(0)
			s, state := tc.build(t, clock)
			rig := buildConfRig(t, s, clock)
			rxPort, txPort := rig.extPort, rig.intPort
			if tc.fromInternal {
				rxPort, txPort = rig.intPort, rig.extPort
			}

			// A concurrent scraper races the workers on the counted
			// stats surface for the whole test (the -race guarantee).
			stop := make(chan struct{})
			var scraper sync.WaitGroup
			scraper.Add(1)
			go func() {
				defer scraper.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = s.StatsSnapshot()
					for i := 0; i < confShards; i++ {
						_ = s.ShardStatsSnapshot(i)
					}
				}
			}()
			defer scraper.Wait()
			defer close(stop)

			// Client-side pass: deliver through the wire's RSS hash (the
			// one the pipeline installed from the NF's own ShardOf).
			frames := make([][]byte, confSessions)
			perShard := make([]int, confShards)
			for i := range frames {
				frames[i] = tc.frame(i)
				shard := s.ShardOf(frames[i], tc.fromInternal)
				if shard < 0 || shard >= confShards {
					t.Fatalf("session %d steers out of range: %d", i, shard)
				}
				perShard[shard]++
				clock.Advance(1000)
				if !rxPort.DeliverRx(frames[i], clock.Now()) {
					t.Fatal("RX queue rejected a frame")
				}
			}
			rig.pollAllWorkers(t)
			outputs := drainAll(t, txPort)
			if len(outputs) != confSessions {
				t.Fatalf("forwarded %d of %d client-side frames", len(outputs), confSessions)
			}

			// Steering agreement + isolation: state decomposes exactly
			// by the declared steering — a frame RSS placed on the wrong
			// worker would have been processed (and admitted) by that
			// worker's first shard instead.
			busy := 0
			total := 0
			for i := 0; i < confShards; i++ {
				if got := state(i); got != perShard[i] {
					t.Fatalf("shard %d holds %d sessions, steering sent it %d", i, got, perShard[i])
				} else if got > 0 {
					busy++
					total += got
				}
			}
			if total != confSessions {
				t.Fatalf("state total %d, want %d", total, confSessions)
			}
			if busy < 2 {
				t.Fatalf("only %d shards busy; steering degenerate", busy)
			}

			// Return-direction pass: the reverse of every output must
			// steer to the same shard (no state may be created) and be
			// recognized there.
			before := make([]int, confShards)
			for i := range before {
				before[i] = state(i)
			}
			replyPerShard := make([]int, confShards)
			for _, out := range outputs {
				reply := reverseFrame(t, out)
				replyPerShard[s.ShardOf(reply, !tc.fromInternal)]++
				clock.Advance(1000)
				if !txPort.DeliverRx(reply, clock.Now()) {
					t.Fatal("RX queue rejected a reply")
				}
			}
			// Both directions of the session population steer alike:
			// the replies must land on the shards in exactly the
			// forward direction's counts (and each reply being
			// *recognized* below pins the per-session agreement — a
			// reply on the wrong shard would miss its state there).
			for i := 0; i < confShards; i++ {
				if replyPerShard[i] != perShard[i] {
					t.Fatalf("shard %d: %d replies steered, %d sessions live there",
						i, replyPerShard[i], perShard[i])
				}
			}
			rig.pollAllWorkers(t)
			replies := drainAll(t, rxPort)
			if len(replies) != confSessions {
				t.Fatalf("forwarded %d of %d replies", len(replies), confSessions)
			}
			for i := 0; i < confShards; i++ {
				if state(i) != before[i] {
					t.Fatalf("shard %d state changed on the return direction: %d → %d (reply missed its session)",
						i, before[i], state(i))
				}
			}

			// Stats aggregation: the snapshot is exactly the sum of the
			// per-shard cells, and counts every processed packet.
			var sum nf.Stats
			for i := 0; i < confShards; i++ {
				sum.Add(s.ShardStatsSnapshot(i))
			}
			snap := s.StatsSnapshot()
			if snap != sum {
				t.Fatalf("aggregate %+v ≠ per-shard sum %+v", snap, sum)
			}
			if snap.Processed != 2*confSessions || snap.Forwarded != 2*confSessions {
				t.Fatalf("snapshot %+v, want processed=forwarded=%d", snap, 2*confSessions)
			}

			// Conservation: every mbuf back in its pool.
			for _, p := range rig.pools {
				if p.InUse() != 0 {
					t.Fatalf("mbuf leak: %d in use", p.InUse())
				}
			}
		})
	}
}
