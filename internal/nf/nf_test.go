package nf_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vignat/internal/discard"
	"vignat/internal/dpdk"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
)

// --- test fixtures ---

// recordNF is a scripted NF that logs every Process call and answers
// with a fixed verdict.
type recordNF struct {
	name    string
	verdict nf.Verdict
	log     *[]string
	stats   nf.Stats
}

func (r *recordNF) Name() string { return r.name }

func (r *recordNF) Process(frame []byte, fromInternal bool) nf.Verdict {
	*r.log = append(*r.log, fmt.Sprintf("%s/%v", r.name, fromInternal))
	r.stats.Processed++
	if r.verdict == nf.Forward {
		r.stats.Forwarded++
	} else {
		r.stats.Dropped++
	}
	return r.verdict
}

func (r *recordNF) ProcessBatch(pkts []nf.Pkt, verdicts []nf.Verdict) {
	for i := range pkts {
		verdicts[i] = r.Process(pkts[i].Frame, pkts[i].FromInternal)
	}
}

func (r *recordNF) Expire(now libvig.Time) int { return 0 }
func (r *recordNF) NFStats() nf.Stats          { return r.stats }

func udpFrame(t *testing.T, buf []byte, id flow.ID) []byte {
	t.Helper()
	id.Proto = flow.UDP
	spec := &netstack.FrameSpec{ID: id}
	return netstack.Craft(buf[:netstack.FrameLen(spec)], spec)
}

func twoPorts(t *testing.T, nMbufs int) (*dpdk.Mempool, *dpdk.Port, *dpdk.Port) {
	t.Helper()
	pool, err := dpdk.NewMempool(nMbufs)
	if err != nil {
		t.Fatal(err)
	}
	intPort, err := dpdk.NewPort(0, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		t.Fatal(err)
	}
	extPort, err := dpdk.NewPort(1, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		t.Fatal(err)
	}
	return pool, intPort, extPort
}

// multiQueuePorts builds two ports with nQueues queue pairs each and a
// dedicated mempool per queue (the configuration concurrent per-worker
// polling requires). It returns all pools for leak accounting.
func multiQueuePorts(t *testing.T, nQueues, mbufsPerQueue int) ([]*dpdk.Mempool, *dpdk.Port, *dpdk.Port) {
	t.Helper()
	var pools []*dpdk.Mempool
	newPools := func() []*dpdk.Mempool {
		ps := make([]*dpdk.Mempool, nQueues)
		for i := range ps {
			p, err := dpdk.NewMempool(mbufsPerQueue)
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
			pools = append(pools, p)
		}
		return ps
	}
	intPort, err := dpdk.NewMultiQueuePort(0, nQueues, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, newPools())
	if err != nil {
		t.Fatal(err)
	}
	extPort, err := dpdk.NewMultiQueuePort(1, nQueues, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, newPools())
	if err != nil {
		t.Fatal(err)
	}
	return pools, intPort, extPort
}

func inUseTotal(pools []*dpdk.Mempool) int {
	n := 0
	for _, p := range pools {
		n += p.InUse()
	}
	return n
}

func drainAllPools(t *testing.T, port *dpdk.Port) []flow.ID {
	t.Helper()
	var ids []flow.ID
	bufs := make([]*dpdk.Mbuf, 8)
	for {
		k := port.DrainTx(bufs)
		if k == 0 {
			return ids
		}
		for i := 0; i < k; i++ {
			var p netstack.Packet
			if err := p.Parse(bufs[i].Data); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, p.FlowID())
			if err := bufs[i].Pool().Free(bufs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func drainAll(t *testing.T, port *dpdk.Port, pool *dpdk.Mempool) []flow.ID {
	t.Helper()
	var ids []flow.ID
	bufs := make([]*dpdk.Mbuf, 8)
	for {
		k := port.DrainTx(bufs)
		if k == 0 {
			return ids
		}
		for i := 0; i < k; i++ {
			var p netstack.Packet
			if err := p.Parse(bufs[i].Data); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, p.FlowID())
			if err := pool.Free(bufs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// --- Chain ---

// TestChainDirectionOrder checks the service-chain ordering contract:
// internal→external traffic traverses elements left to right, return
// traffic right to left.
func TestChainDirectionOrder(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Forward, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}

	if v := c.Process(nil, true); v != nf.Forward {
		t.Fatalf("outbound verdict %v", v)
	}
	if v := c.Process(nil, false); v != nf.Forward {
		t.Fatalf("inbound verdict %v", v)
	}
	want := []string{"a/true", "b/true", "b/false", "a/false"}
	if len(log) != len(want) {
		t.Fatalf("call log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("call log %v, want %v", log, want)
		}
	}
}

// TestChainDropShortCircuits: the first element to drop wins and later
// elements never see the packet.
func TestChainDropShortCircuits(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Drop, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Process(nil, true); v != nf.Drop {
		t.Fatalf("verdict %v, want drop", v)
	}
	if len(log) != 1 || log[0] != "a/true" {
		t.Fatalf("call log %v: element after the dropper ran", log)
	}
	// Inbound traverses in reverse, so b (closest to external) drops
	// nothing and a drops; both run only until the drop.
	log = log[:0]
	if v := c.Process(nil, false); v != nf.Drop {
		t.Fatalf("verdict %v, want drop", v)
	}
	want := []string{"b/false", "a/false"}
	if len(log) != len(want) || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("call log %v, want %v", log, want)
	}
}

// parityNF drops frames whose first byte is odd — a deterministic
// stateless dropper for batch-vs-per-packet equivalence checks.
type parityNF struct{ stats nf.Stats }

func (p *parityNF) Name() string { return "parity" }
func (p *parityNF) Process(frame []byte, fromInternal bool) nf.Verdict {
	p.stats.Processed++
	if len(frame) > 0 && frame[0]%2 == 1 {
		p.stats.Dropped++
		return nf.Drop
	}
	p.stats.Forwarded++
	return nf.Forward
}
func (p *parityNF) ProcessBatch(pkts []nf.Pkt, verdicts []nf.Verdict) {
	for i := range pkts {
		verdicts[i] = p.Process(pkts[i].Frame, pkts[i].FromInternal)
	}
}
func (p *parityNF) Expire(now libvig.Time) int { return 0 }
func (p *parityNF) NFStats() nf.Stats          { return p.stats }

// TestChainBatchedElementPasses: ProcessBatch runs each element once
// over the whole surviving direction group (the i-cache win), with the
// internal-side group first and reverse element order for the
// external-side group.
func TestChainBatchedElementPasses(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Forward, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []nf.Pkt{{FromInternal: true}, {FromInternal: false}, {FromInternal: true}}
	verd := make([]nf.Verdict, len(pkts))
	c.ProcessBatch(pkts, verd)
	// Two outbound packets take one a-pass then one b-pass; the inbound
	// packet then takes b and a in reverse order.
	want := []string{"a/true", "a/true", "b/true", "b/true", "b/false", "a/false"}
	if len(log) != len(want) {
		t.Fatalf("call log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("call log %v, want %v", log, want)
		}
	}
	for i, v := range verd {
		if v != nf.Forward {
			t.Fatalf("packet %d verdict %v", i, v)
		}
	}
}

// TestChainBatchedDropShortCircuits: a packet dropped by an element
// never reaches later elements in batched mode either.
func TestChainBatchedDropShortCircuits(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Drop, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []nf.Pkt{{FromInternal: true}, {FromInternal: true}}
	verd := make([]nf.Verdict, len(pkts))
	c.ProcessBatch(pkts, verd)
	if verd[0] != nf.Drop || verd[1] != nf.Drop {
		t.Fatalf("verdicts %v, want drops", verd)
	}
	for _, entry := range log {
		if entry[0] == 'b' {
			t.Fatalf("call log %v: element after the dropper ran", log)
		}
	}
	if st := c.NFStats(); st.Processed != 2 || st.Dropped != 2 || st.Forwarded != 0 {
		t.Fatalf("chain stats %+v", st)
	}
}

// TestChainBatchMatchesPerPacket: batched and per-packet chain
// processing agree on every verdict and on the aggregate stats, for a
// mixed-direction burst with drops at both chain ends.
func TestChainBatchMatchesPerPacket(t *testing.T) {
	mkChain := func() *nf.Chain {
		c, err := nf.NewChain("t", &parityNF{}, discard.NewFrameNF())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	batched, perPkt := mkChain(), mkChain()

	var pkts []nf.Pkt
	buf := make([]byte, 2048)
	for i := 0; i < 64; i++ {
		dst := uint16(80)
		if i%5 == 0 {
			dst = 9 // dropped by the discard element
		}
		id := flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, 0, byte(i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 1),
			SrcPort: uint16(3000 + i),
			DstPort: dst,
		}
		frame := append([]byte(nil), udpFrame(t, buf, id)...)
		if i%3 == 0 {
			frame[0] = 1 // dropped by the parity element
		} else {
			frame[0] = 0
		}
		pkts = append(pkts, nf.Pkt{Frame: frame, FromInternal: i%2 == 0})
	}

	got := make([]nf.Verdict, len(pkts))
	batched.ProcessBatch(pkts, got)
	for i := range pkts {
		want := perPkt.Process(pkts[i].Frame, pkts[i].FromInternal)
		if got[i] != want {
			t.Fatalf("packet %d: batched %v, per-packet %v", i, got[i], want)
		}
	}
	bs, ps := batched.NFStats(), perPkt.NFStats()
	if bs != ps {
		t.Fatalf("stats diverge: batched %+v, per-packet %+v", bs, ps)
	}
}

// TestChainBatchGroupedMatchesPerPacket drives a direction-grouped
// burst — the exact shape the engine's steer pass emits (the internal
// port's frames first, then the external port's) — through the fused
// first-element pass, and checks verdict-for-verdict agreement with
// per-packet processing. Together with TestChainBatchMatchesPerPacket
// (interleaved directions, the copying fallback) this pins that the
// steer/first-element fusion is observably invisible.
func TestChainBatchGroupedMatchesPerPacket(t *testing.T) {
	mkChain := func() *nf.Chain {
		c, err := nf.NewChain("t", &parityNF{}, discard.NewFrameNF())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	batched, perPkt := mkChain(), mkChain()

	var pkts []nf.Pkt
	buf := make([]byte, 2048)
	mk := func(i int, fromInternal bool) {
		dst := uint16(80)
		if i%5 == 0 {
			dst = 9 // dropped by the discard element
		}
		id := flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, 0, byte(i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 1),
			SrcPort: uint16(3000 + i),
			DstPort: dst,
		}
		frame := append([]byte(nil), udpFrame(t, buf, id)...)
		frame[0] = byte(i % 3 % 2) // some dropped by the parity element
		pkts = append(pkts, nf.Pkt{Frame: frame, FromInternal: fromInternal})
	}
	// Internal group first, external group second — two contiguous
	// runs, both eligible for the fused pass.
	for i := 0; i < 20; i++ {
		mk(i, true)
	}
	for i := 20; i < 32; i++ {
		mk(i, false)
	}

	got := make([]nf.Verdict, len(pkts))
	batched.ProcessBatch(pkts, got)
	for i := range pkts {
		want := perPkt.Process(pkts[i].Frame, pkts[i].FromInternal)
		if got[i] != want {
			t.Fatalf("packet %d: batched %v, per-packet %v", i, got[i], want)
		}
	}
	if bs, ps := batched.NFStats(), perPkt.NFStats(); bs != ps {
		t.Fatalf("stats diverge: batched %+v, per-packet %+v", bs, ps)
	}

	// A single-direction burst starting mid-slice is still contiguous:
	// the fused pass must respect the offset.
	single := mkChain()
	sub := pkts[3:17]
	verd := make([]nf.Verdict, len(sub))
	single.ProcessBatch(sub, verd)
	ref := mkChain()
	for i := range sub {
		if want := ref.Process(sub[i].Frame, sub[i].FromInternal); verd[i] != want {
			t.Fatalf("offset packet %d: batched %v, per-packet %v", i, verd[i], want)
		}
	}
}

// --- Pipeline ---

// TestPipelineForwardsAndDrops runs the frame-level discard NF on the
// engine: port-9 frames are dropped and freed, the rest are forwarded
// out the opposite port, and every mbuf is accounted for.
func TestPipelineForwardsAndDrops(t *testing.T) {
	pool, intPort, extPort := twoPorts(t, 32)
	pipe, err := nf.NewPipeline(discard.NewFrameNF(), nf.Config{Internal: intPort, External: extPort})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	host := flow.MakeAddr(10, 0, 0, 1)
	server := flow.MakeAddr(198, 51, 100, 1)
	for i, dst := range []uint16{80, 9, 443} {
		id := flow.ID{SrcIP: host, DstIP: server, SrcPort: uint16(4000 + i), DstPort: dst}
		if !intPort.DeliverRx(udpFrame(t, buf, id), 0) {
			t.Fatal("rx rejected")
		}
	}
	// And one inbound frame, to check direction handling.
	inbound := flow.ID{SrcIP: server, DstIP: host, SrcPort: 80, DstPort: 4000, Proto: flow.UDP}
	if !extPort.DeliverRx(udpFrame(t, buf, inbound), 0) {
		t.Fatal("rx rejected")
	}

	n, err := pipe.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("polled %d packets, want 4", n)
	}

	out := drainAll(t, extPort, pool)
	if len(out) != 2 {
		t.Fatalf("%d frames on the external wire, want 2 (port 9 dropped)", len(out))
	}
	for _, id := range out {
		if id.DstPort == 9 {
			t.Fatal("a port-9 frame escaped")
		}
	}
	in := drainAll(t, intPort, pool)
	if len(in) != 1 || in[0] != inbound {
		t.Fatalf("inbound frame mangled: %v", in)
	}

	st := pipe.Stats()
	if st.RxPackets != 4 || st.TxPackets != 3 || st.Dropped != 1 {
		t.Fatalf("engine stats %+v, want rx=4 tx=3 dropped=1", st)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d mbufs leaked", pool.InUse())
	}
}

// TestPipelineNATRoundTrip drives the verified NAT through the engine:
// outbound packets are translated and emerge on the external port,
// replies to the translated tuple come back translated on the internal
// port, unsolicited outside packets die.
func TestPipelineNATRoundTrip(t *testing.T) {
	extIP := flow.MakeAddr(198, 18, 1, 1)
	clock := libvig.NewVirtualClock(0)
	sharded, err := nat.NewSharded(nat.Config{
		Capacity: 1024, Timeout: time.Hour, ExternalIP: extIP, ExternalPort: 1,
	}, clock, 4)
	if err != nil {
		t.Fatal(err)
	}
	pools, intPort, extPort := multiQueuePorts(t, 4, 64)
	pipe, err := nf.NewPipeline(sharded, nf.Config{
		Internal: intPort, External: extPort, Workers: 4, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	nFlows := 16
	for i := 0; i < nFlows; i++ {
		id := flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, 0, byte(1+i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 7),
			SrcPort: uint16(5000 + i),
			DstPort: 80,
		}
		if !intPort.DeliverRx(udpFrame(t, buf, id), clock.Now()) {
			t.Fatal("rx rejected")
		}
	}
	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	outbound := drainAllPools(t, extPort)
	if len(outbound) != nFlows {
		t.Fatalf("%d translated frames, want %d", len(outbound), nFlows)
	}

	// Replies to every translated tuple return through the NAT.
	for _, id := range outbound {
		if id.SrcIP != extIP {
			t.Fatalf("outbound frame not translated: %v", id)
		}
		if !extPort.DeliverRx(udpFrame(t, buf, id.Reverse()), clock.Now()) {
			t.Fatal("rx rejected")
		}
	}
	// One unsolicited packet to a port no flow owns.
	bogus := flow.ID{SrcIP: flow.MakeAddr(203, 0, 113, 9), DstIP: extIP, SrcPort: 443, DstPort: 65535}
	if !extPort.DeliverRx(udpFrame(t, buf, bogus), clock.Now()) {
		t.Fatal("rx rejected")
	}

	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	replies := drainAllPools(t, intPort)
	if len(replies) != nFlows {
		t.Fatalf("%d replies delivered inside, want %d (bogus packet dropped)", len(replies), nFlows)
	}
	for _, id := range replies {
		if id.DstIP == extIP {
			t.Fatalf("reply not translated back: %v", id)
		}
	}
	if sharded.Flows() != nFlows {
		t.Fatalf("%d live flows, want %d", sharded.Flows(), nFlows)
	}
	if inUseTotal(pools) != 0 {
		t.Fatalf("%d mbufs leaked", inUseTotal(pools))
	}
}

// TestPipelineParallelWorkers runs four run-to-completion workers on
// their own goroutines, each owning a queue pair and a shard set
// end-to-end: deliver outbound bursts, PollWorker, drain its TX queue,
// feed the replies back, with zero synchronization between workers.
// Run under -race this is the proof that no shared mutable state sits
// on the packet path.
func TestPipelineParallelWorkers(t *testing.T) {
	const nWorkers = 4
	const flowsPerWorker = 24
	extIP := flow.MakeAddr(198, 18, 1, 1)
	clock := libvig.NewVirtualClock(0)
	sharded, err := nat.NewSharded(nat.Config{
		Capacity: 1024, Timeout: time.Hour, ExternalIP: extIP, ExternalPort: 1,
	}, clock, nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	pools, intPort, extPort := multiQueuePorts(t, nWorkers, 256)
	pipe, err := nf.NewPipeline(sharded, nf.Config{
		Internal: intPort, External: extPort, Workers: nWorkers, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-steer flows so each worker's wire driver delivers only frames
	// that RSS places on its own queue — the single-producer contract a
	// real NIC gives each queue.
	perWorker := make([][][]byte, nWorkers)
	buf := make([]byte, 2048)
	total := 0
	for i := 0; total < nWorkers*flowsPerWorker; i++ {
		id := flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, byte(i>>8), byte(i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 7),
			SrcPort: uint16(5000 + i),
			DstPort: 80,
			Proto:   flow.UDP,
		}
		frame := udpFrame(t, buf, id)
		w := sharded.ShardOf(frame, true) % nWorkers
		if len(perWorker[w]) >= flowsPerWorker {
			continue
		}
		perWorker[w] = append(perWorker[w], append([]byte(nil), frame...))
		total++
	}

	type result struct {
		replies int
		err     error
	}
	results := make([]result, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drain := make([]*dpdk.Mbuf, nf.DefaultBurst)
			reply := make([]byte, 2048)
			for _, frame := range perWorker[w] {
				// Outbound: wire → internal port (RSS steers to queue w).
				if !intPort.DeliverRx(frame, clock.Now()) {
					results[w].err = fmt.Errorf("worker %d: rx rejected", w)
					return
				}
				if _, err := pipe.PollWorker(w); err != nil {
					results[w].err = err
					return
				}
				// Drain the translated frame from this worker's TX queue
				// and send the server's reply back through the NAT.
				k := extPort.DrainTxQueue(w, drain)
				if k != 1 {
					results[w].err = fmt.Errorf("worker %d: %d frames on the wire, want 1", w, k)
					return
				}
				var p netstack.Packet
				if err := p.Parse(drain[0].Data); err != nil {
					results[w].err = err
					return
				}
				replyFrame := udpFrame(t, reply, p.FlowID().Reverse())
				if err := drain[0].Pool().Free(drain[0]); err != nil {
					results[w].err = err
					return
				}
				if !extPort.DeliverRx(replyFrame, clock.Now()) {
					results[w].err = fmt.Errorf("worker %d: reply rx rejected", w)
					return
				}
				if _, err := pipe.PollWorker(w); err != nil {
					results[w].err = err
					return
				}
				k = intPort.DrainTxQueue(w, drain)
				if k != 1 {
					results[w].err = fmt.Errorf("worker %d: %d replies inside, want 1", w, k)
					return
				}
				if err := drain[0].Pool().Free(drain[0]); err != nil {
					results[w].err = err
					return
				}
				results[w].replies++
			}
		}(w)
	}
	wg.Wait()

	for w, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.replies != flowsPerWorker {
			t.Fatalf("worker %d completed %d round trips, want %d", w, r.replies, flowsPerWorker)
		}
		if ws := pipe.WorkerStats(w); ws.RxPackets != 2*flowsPerWorker {
			t.Fatalf("worker %d stats %+v, want rx=%d", w, ws, 2*flowsPerWorker)
		}
	}
	if st := pipe.Stats(); st.RxPackets != 2*nWorkers*flowsPerWorker {
		t.Fatalf("engine stats %+v", st)
	}
	if sharded.Flows() != nWorkers*flowsPerWorker {
		t.Fatalf("%d live flows, want %d", sharded.Flows(), nWorkers*flowsPerWorker)
	}
	if inUseTotal(pools) != 0 {
		t.Fatalf("%d mbufs leaked", inUseTotal(pools))
	}
}

// TestPipelineRejectsUnderQueuedPorts: more workers than queue pairs is
// a configuration error, not a silent serialization.
func TestPipelineRejectsUnderQueuedPorts(t *testing.T) {
	_, intPort, extPort := twoPorts(t, 8)
	_, err := nf.NewPipeline(discard.NewFrameNF(), nf.Config{
		Internal: intPort, External: extPort, Workers: 2,
	})
	if err == nil {
		t.Fatal("pipeline accepted 2 workers on single-queue ports")
	}
}

// TestPipelineIdleExpiry: idle polls advance NF expiry when a clock is
// configured, so state drains without traffic.
func TestPipelineIdleExpiry(t *testing.T) {
	extIP := flow.MakeAddr(198, 18, 1, 1)
	clock := libvig.NewVirtualClock(0)
	texp := time.Second
	sharded, err := nat.NewSharded(nat.Config{
		Capacity: 64, Timeout: texp, ExternalIP: extIP, ExternalPort: 1,
	}, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, intPort, extPort := twoPorts(t, 8)
	pipe, err := nf.NewPipeline(sharded, nf.Config{Internal: intPort, External: extPort, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	id := flow.ID{SrcIP: flow.MakeAddr(10, 0, 0, 1), DstIP: flow.MakeAddr(1, 1, 1, 1), SrcPort: 1234, DstPort: 53}
	intPort.DeliverRx(udpFrame(t, buf, id), clock.Now())
	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	drainAll(t, extPort, pool)
	if sharded.Flows() != 1 {
		t.Fatalf("%d flows after packet, want 1", sharded.Flows())
	}

	clock.Advance(2 * texp.Nanoseconds())
	if n, err := pipe.Poll(); err != nil || n != 0 {
		t.Fatalf("idle poll returned (%d, %v)", n, err)
	}
	if sharded.Flows() != 0 {
		t.Fatalf("%d flows after idle poll past Texp, want 0", sharded.Flows())
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d mbufs leaked", pool.InUse())
	}
}
