package nf_test

import (
	"fmt"
	"testing"
	"time"

	"vignat/internal/discard"
	"vignat/internal/dpdk"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
)

// --- test fixtures ---

// recordNF is a scripted NF that logs every Process call and answers
// with a fixed verdict.
type recordNF struct {
	name    string
	verdict nf.Verdict
	log     *[]string
	stats   nf.Stats
}

func (r *recordNF) Name() string { return r.name }

func (r *recordNF) Process(frame []byte, fromInternal bool) nf.Verdict {
	*r.log = append(*r.log, fmt.Sprintf("%s/%v", r.name, fromInternal))
	r.stats.Processed++
	if r.verdict == nf.Forward {
		r.stats.Forwarded++
	} else {
		r.stats.Dropped++
	}
	return r.verdict
}

func (r *recordNF) ProcessBatch(pkts []nf.Pkt, verdicts []nf.Verdict) {
	for i := range pkts {
		verdicts[i] = r.Process(pkts[i].Frame, pkts[i].FromInternal)
	}
}

func (r *recordNF) Expire(now libvig.Time) int { return 0 }
func (r *recordNF) NFStats() nf.Stats          { return r.stats }

func udpFrame(t *testing.T, buf []byte, id flow.ID) []byte {
	t.Helper()
	id.Proto = flow.UDP
	spec := &netstack.FrameSpec{ID: id}
	return netstack.Craft(buf[:netstack.FrameLen(spec)], spec)
}

func twoPorts(t *testing.T, nMbufs int) (*dpdk.Mempool, *dpdk.Port, *dpdk.Port) {
	t.Helper()
	pool, err := dpdk.NewMempool(nMbufs)
	if err != nil {
		t.Fatal(err)
	}
	intPort, err := dpdk.NewPort(0, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		t.Fatal(err)
	}
	extPort, err := dpdk.NewPort(1, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		t.Fatal(err)
	}
	return pool, intPort, extPort
}

func drainAll(t *testing.T, port *dpdk.Port, pool *dpdk.Mempool) []flow.ID {
	t.Helper()
	var ids []flow.ID
	bufs := make([]*dpdk.Mbuf, 8)
	for {
		k := port.DrainTx(bufs)
		if k == 0 {
			return ids
		}
		for i := 0; i < k; i++ {
			var p netstack.Packet
			if err := p.Parse(bufs[i].Data); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, p.FlowID())
			if err := pool.Free(bufs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// --- Chain ---

// TestChainDirectionOrder checks the service-chain ordering contract:
// internal→external traffic traverses elements left to right, return
// traffic right to left.
func TestChainDirectionOrder(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Forward, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}

	if v := c.Process(nil, true); v != nf.Forward {
		t.Fatalf("outbound verdict %v", v)
	}
	if v := c.Process(nil, false); v != nf.Forward {
		t.Fatalf("inbound verdict %v", v)
	}
	want := []string{"a/true", "b/true", "b/false", "a/false"}
	if len(log) != len(want) {
		t.Fatalf("call log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("call log %v, want %v", log, want)
		}
	}
}

// TestChainDropShortCircuits: the first element to drop wins and later
// elements never see the packet.
func TestChainDropShortCircuits(t *testing.T) {
	var log []string
	a := &recordNF{name: "a", verdict: nf.Drop, log: &log}
	b := &recordNF{name: "b", verdict: nf.Forward, log: &log}
	c, err := nf.NewChain("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Process(nil, true); v != nf.Drop {
		t.Fatalf("verdict %v, want drop", v)
	}
	if len(log) != 1 || log[0] != "a/true" {
		t.Fatalf("call log %v: element after the dropper ran", log)
	}
	// Inbound traverses in reverse, so b (closest to external) drops
	// nothing and a drops; both run only until the drop.
	log = log[:0]
	if v := c.Process(nil, false); v != nf.Drop {
		t.Fatalf("verdict %v, want drop", v)
	}
	want := []string{"b/false", "a/false"}
	if len(log) != len(want) || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("call log %v, want %v", log, want)
	}
}

// --- Pipeline ---

// TestPipelineForwardsAndDrops runs the frame-level discard NF on the
// engine: port-9 frames are dropped and freed, the rest are forwarded
// out the opposite port, and every mbuf is accounted for.
func TestPipelineForwardsAndDrops(t *testing.T) {
	pool, intPort, extPort := twoPorts(t, 32)
	pipe, err := nf.NewPipeline(discard.NewFrameNF(), nf.Config{Internal: intPort, External: extPort})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	host := flow.MakeAddr(10, 0, 0, 1)
	server := flow.MakeAddr(198, 51, 100, 1)
	for i, dst := range []uint16{80, 9, 443} {
		id := flow.ID{SrcIP: host, DstIP: server, SrcPort: uint16(4000 + i), DstPort: dst}
		if !intPort.DeliverRx(udpFrame(t, buf, id), 0) {
			t.Fatal("rx rejected")
		}
	}
	// And one inbound frame, to check direction handling.
	inbound := flow.ID{SrcIP: server, DstIP: host, SrcPort: 80, DstPort: 4000, Proto: flow.UDP}
	if !extPort.DeliverRx(udpFrame(t, buf, inbound), 0) {
		t.Fatal("rx rejected")
	}

	n, err := pipe.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("polled %d packets, want 4", n)
	}

	out := drainAll(t, extPort, pool)
	if len(out) != 2 {
		t.Fatalf("%d frames on the external wire, want 2 (port 9 dropped)", len(out))
	}
	for _, id := range out {
		if id.DstPort == 9 {
			t.Fatal("a port-9 frame escaped")
		}
	}
	in := drainAll(t, intPort, pool)
	if len(in) != 1 || in[0] != inbound {
		t.Fatalf("inbound frame mangled: %v", in)
	}

	st := pipe.Stats()
	if st.RxPackets != 4 || st.TxPackets != 3 || st.Dropped != 1 {
		t.Fatalf("engine stats %+v, want rx=4 tx=3 dropped=1", st)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d mbufs leaked", pool.InUse())
	}
}

// TestPipelineNATRoundTrip drives the verified NAT through the engine:
// outbound packets are translated and emerge on the external port,
// replies to the translated tuple come back translated on the internal
// port, unsolicited outside packets die.
func TestPipelineNATRoundTrip(t *testing.T) {
	extIP := flow.MakeAddr(198, 18, 1, 1)
	clock := libvig.NewVirtualClock(0)
	sharded, err := nat.NewSharded(nat.Config{
		Capacity: 1024, Timeout: time.Hour, ExternalIP: extIP, ExternalPort: 1,
	}, clock, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool, intPort, extPort := twoPorts(t, 64)
	pipe, err := nf.NewPipeline(sharded, nf.Config{
		Internal: intPort, External: extPort, Workers: 4, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	nFlows := 16
	for i := 0; i < nFlows; i++ {
		id := flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, 0, byte(1+i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 7),
			SrcPort: uint16(5000 + i),
			DstPort: 80,
		}
		if !intPort.DeliverRx(udpFrame(t, buf, id), clock.Now()) {
			t.Fatal("rx rejected")
		}
	}
	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	outbound := drainAll(t, extPort, pool)
	if len(outbound) != nFlows {
		t.Fatalf("%d translated frames, want %d", len(outbound), nFlows)
	}

	// Replies to every translated tuple return through the NAT.
	for _, id := range outbound {
		if id.SrcIP != extIP {
			t.Fatalf("outbound frame not translated: %v", id)
		}
		if !extPort.DeliverRx(udpFrame(t, buf, id.Reverse()), clock.Now()) {
			t.Fatal("rx rejected")
		}
	}
	// One unsolicited packet to a port no flow owns.
	bogus := flow.ID{SrcIP: flow.MakeAddr(203, 0, 113, 9), DstIP: extIP, SrcPort: 443, DstPort: 65535}
	if !extPort.DeliverRx(udpFrame(t, buf, bogus), clock.Now()) {
		t.Fatal("rx rejected")
	}

	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	replies := drainAll(t, intPort, pool)
	if len(replies) != nFlows {
		t.Fatalf("%d replies delivered inside, want %d (bogus packet dropped)", len(replies), nFlows)
	}
	for _, id := range replies {
		if id.DstIP == extIP {
			t.Fatalf("reply not translated back: %v", id)
		}
	}
	if sharded.Flows() != nFlows {
		t.Fatalf("%d live flows, want %d", sharded.Flows(), nFlows)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d mbufs leaked", pool.InUse())
	}
}

// TestPipelineIdleExpiry: idle polls advance NF expiry when a clock is
// configured, so state drains without traffic.
func TestPipelineIdleExpiry(t *testing.T) {
	extIP := flow.MakeAddr(198, 18, 1, 1)
	clock := libvig.NewVirtualClock(0)
	texp := time.Second
	sharded, err := nat.NewSharded(nat.Config{
		Capacity: 64, Timeout: texp, ExternalIP: extIP, ExternalPort: 1,
	}, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, intPort, extPort := twoPorts(t, 8)
	pipe, err := nf.NewPipeline(sharded, nf.Config{Internal: intPort, External: extPort, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	id := flow.ID{SrcIP: flow.MakeAddr(10, 0, 0, 1), DstIP: flow.MakeAddr(1, 1, 1, 1), SrcPort: 1234, DstPort: 53}
	intPort.DeliverRx(udpFrame(t, buf, id), clock.Now())
	if _, err := pipe.Poll(); err != nil {
		t.Fatal(err)
	}
	drainAll(t, extPort, pool)
	if sharded.Flows() != 1 {
		t.Fatalf("%d flows after packet, want 1", sharded.Flows())
	}

	clock.Advance(2 * texp.Nanoseconds())
	if n, err := pipe.Poll(); err != nil || n != 0 {
		t.Fatalf("idle poll returned (%d, %v)", n, err)
	}
	if sharded.Flows() != 0 {
		t.Fatalf("%d flows after idle poll past Texp, want 0", sharded.Flows())
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d mbufs leaked", pool.InUse())
	}
}
