package nf

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"time"
)

// MetricSource names one stats surface the metrics endpoint exposes.
// Snapshot must be safe to call from any goroutine at any time —
// CountedShards.StatsSnapshot (per-shard padded atomic cells) is the
// intended producer; Pipeline.Stats, which walks worker-owned state, is
// not.
type MetricSource struct {
	Name     string
	Snapshot func() Stats
}

// Metrics is a running metrics endpoint: the ROADMAP's "actual metrics
// endpoint" over the per-shard stats cells. It serves
//
//	/metrics     — JSON {source: {processed, forwarded, dropped, expired}}
//	/debug/vars  — the standard Go expvar surface (same numbers, plus
//	               the runtime's own variables)
//
// and publishes every source as an expvar.Func, so any expvar-speaking
// collector scrapes the NFs without custom glue. Scrapes run
// concurrently with traffic: the snapshot path is a handful of
// uncontended atomic loads per shard and never touches worker-owned
// state.
type Metrics struct {
	ln      net.Listener
	srv     *http.Server
	sources []MetricSource
}

// ServeMetrics listens on addr (e.g. ":9090", or "127.0.0.1:0" for an
// ephemeral port) and serves the sources until Close. Source names must
// be unique within the process: expvar's registry is global and
// write-once.
func ServeMetrics(addr string, sources ...MetricSource) (*Metrics, error) {
	if len(sources) == 0 {
		return nil, errors.New("nf: metrics endpoint needs at least one source")
	}
	for _, s := range sources {
		if s.Name == "" || s.Snapshot == nil {
			return nil, errors.New("nf: metric source needs a name and a snapshot function")
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nf: metrics listen: %w", err)
	}
	m := &Metrics{ln: ln, sources: sources}
	for _, s := range sources {
		s := s
		name := "nf." + s.Name
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = m.srv.Serve(ln) }()
	return m, nil
}

// handleMetrics renders every source's snapshot as one JSON object.
func (m *Metrics) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]Stats, len(m.sources))
	for _, s := range m.sources {
		out[s.Name] = s.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// Addr returns the endpoint's actual listen address (useful with an
// ephemeral ":0" bind).
func (m *Metrics) Addr() string { return m.ln.Addr().String() }

// Close stops serving. Published expvar entries remain registered (the
// registry is write-once) and keep reporting the last sources bound to
// their names.
func (m *Metrics) Close() error { return m.srv.Close() }
