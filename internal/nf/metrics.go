package nf

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"vignat/internal/nf/telemetry"
)

// MetricSource names one stats surface the metrics endpoint exposes.
// Snapshot must be safe to call from any goroutine at any time —
// CountedShards.StatsSnapshot (per-shard padded atomic cells) is the
// intended producer; Pipeline.Stats, which walks worker-owned state, is
// not. The optional fields extend the exposition when the source has
// more to say; all of them must honor the same any-goroutine contract.
type MetricSource struct {
	Name     string
	Snapshot func() Stats
	// Reasons, when set, is the NF's declared outcome taxonomy and
	// ReasonCounts its aggregated per-reason totals (indexed by
	// ReasonID) — CountedShards.ReasonSnapshot is the intended producer.
	Reasons      *telemetry.ReasonSet
	ReasonCounts func() []uint64
	// Telemetry, when set, supplies the engine telemetry block backing
	// the latency histograms and the sampled trace ring; it may return
	// nil (telemetry disabled), in which case those sections are simply
	// absent. Pipeline.Telemetry is the intended producer.
	Telemetry func() *telemetry.PipelineTel
}

// ReasonSnapshotter is the concurrency-safe per-reason scrape surface
// sharded NFs expose (CountedShards implements it; the padded per-shard
// reason cells are the backing store).
type ReasonSnapshotter interface {
	ReasonSet() *telemetry.ReasonSet
	ReasonSnapshot() []uint64
}

// SourceOf assembles the richest MetricSource the given NF supports:
// the mandatory Stats snapshot, the per-reason totals when the NF
// exposes the concurrency-safe reason surface, and the engine
// telemetry when pipe carries one.
func SourceOf(name string, nfi NF, snapshot func() Stats, pipe *Pipeline) MetricSource {
	src := MetricSource{Name: name, Snapshot: snapshot}
	if rs, ok := nfi.(ReasonSnapshotter); ok && rs.ReasonSet() != nil {
		src.Reasons = rs.ReasonSet()
		src.ReasonCounts = rs.ReasonSnapshot
	}
	if pipe != nil {
		src.Telemetry = pipe.Telemetry
	}
	return src
}

// expvar's registry is global and write-once, so ServeMetrics publishes
// each name once as a Func that reads through this slot table. Close
// unbinds the slot (the Func then reports nil) and a later ServeMetrics
// rebinds it — no stale closure ever serves an old source — while a
// name that is still bound, or was published by someone else entirely,
// is a collision ServeMetrics reports instead of silently skipping.
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]func() Stats{}
)

// Metrics is a running metrics endpoint: the engine's scrape surface
// over the per-shard stats cells and the per-worker telemetry blocks.
// It serves
//
//	/metrics      — content-negotiated: Prometheus text exposition when
//	                the Accept header asks for text/plain or OpenMetrics
//	                (what a Prometheus scraper sends), JSON otherwise;
//	                ?format=prometheus|json overrides.
//	/debug/vars   — the standard Go expvar surface (same numbers, plus
//	                the runtime's own variables)
//	/debug/pprof/ — the standard Go profiling surface (heap, CPU,
//	                goroutine, ...)
//	/debug/trace  — the sampled per-packet trace rings as JSON, for
//	                sources wired to an engine with telemetry enabled
//
// Scrapes run concurrently with traffic: the snapshot path is a
// handful of uncontended atomic loads per shard (histograms add one
// load per bucket) and never touches worker-owned state.
type Metrics struct {
	ln      net.Listener
	srv     *http.Server
	mux     *http.ServeMux
	sources []MetricSource
}

// ServeMetrics listens on addr (e.g. ":9090", or "127.0.0.1:0" for an
// ephemeral port) and serves the sources until Close. Source names must
// be unique among the endpoints currently open in the process; a name
// already serving (or taken in the expvar registry by a foreign
// publisher) is an error naming the duplicate, not a silent skip.
func ServeMetrics(addr string, sources ...MetricSource) (*Metrics, error) {
	if len(sources) == 0 {
		return nil, errors.New("nf: metrics endpoint needs at least one source")
	}
	for _, s := range sources {
		if s.Name == "" || s.Snapshot == nil {
			return nil, errors.New("nf: metric source needs a name and a snapshot function")
		}
	}
	if err := bindExpvar(sources); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		unbindExpvar(sources)
		return nil, fmt.Errorf("nf: metrics listen: %w", err)
	}
	m := &Metrics{ln: ln, sources: sources}
	mux := http.NewServeMux()
	m.mux = mux
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/debug/trace", m.handleTrace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = m.srv.Serve(ln) }()
	return m, nil
}

// bindExpvar claims every source's expvar slot or reports the
// collision. All-or-nothing: a failed claim releases the ones made.
func bindExpvar(sources []MetricSource) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	bound := make([]string, 0, len(sources))
	fail := func(err error) error {
		for _, name := range bound {
			expvarSlots[name] = nil
		}
		return err
	}
	for _, s := range sources {
		name := "nf." + s.Name
		slot, ours := expvarSlots[name]
		switch {
		case slot != nil:
			return fail(fmt.Errorf("nf: metric source %q already serving (expvar name %q is bound; close the other endpoint first)", s.Name, name))
		case !ours && expvar.Get(name) != nil:
			return fail(fmt.Errorf("nf: metric source %q collides with a foreign expvar publication %q", s.Name, name))
		}
		expvarSlots[name] = s.Snapshot
		bound = append(bound, name)
		if !ours {
			name := name
			expvar.Publish(name, expvar.Func(func() any {
				expvarMu.Lock()
				snap := expvarSlots[name]
				expvarMu.Unlock()
				if snap == nil {
					return nil
				}
				return snap()
			}))
		}
	}
	return nil
}

// unbindExpvar releases the sources' slots (the write-once expvar
// entries stay registered and report nil until a rebind).
func unbindExpvar(sources []MetricSource) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	for _, s := range sources {
		expvarSlots["nf."+s.Name] = nil
	}
}

// sourceJSON is one source's /metrics JSON rendering: the flat Stats
// fields (unchanged on the wire — existing map[string]Stats decoders
// keep working and ignore the additions) plus the per-reason totals.
type sourceJSON struct {
	Stats
	Reasons map[string]uint64 `json:"reasons,omitempty"`
}

// wantsProm decides the /metrics rendering: Prometheus text when the
// client asks for it (Accept: text/plain or OpenMetrics — the
// Prometheus scraper's request), JSON otherwise; an explicit ?format=
// wins.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// handleMetrics renders every source's snapshot, negotiated between
// the JSON object and the Prometheus text exposition.
func (m *Metrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.writeProm(w)
		return
	}
	out := make(map[string]sourceJSON, len(m.sources))
	for _, s := range m.sources {
		j := sourceJSON{Stats: s.Snapshot()}
		if s.Reasons != nil && s.ReasonCounts != nil {
			counts := s.ReasonCounts()
			j.Reasons = make(map[string]uint64, len(counts))
			for id, n := range counts {
				j.Reasons[s.Reasons.Name(telemetry.ReasonID(id))] = n
			}
		}
		out[s.Name] = j
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// statCounters orders the Stats fields for exposition.
var statCounters = []struct {
	name, help string
	get        func(Stats) uint64
}{
	{"nf_processed_total", "Packets processed.", func(s Stats) uint64 { return s.Processed }},
	{"nf_forwarded_total", "Packets forwarded out the opposite interface.", func(s Stats) uint64 { return s.Forwarded }},
	{"nf_dropped_total", "Packets dropped by NF verdict.", func(s Stats) uint64 { return s.Dropped }},
	{"nf_expired_total", "State entries expired.", func(s Stats) uint64 { return s.Expired }},
	{"nf_fastpath_hits_total", "Verdicts taken from the established-flow cache.", func(s Stats) uint64 { return s.FastPathHits }},
	{"nf_fastpath_misses_total", "Packets that took the full slow path.", func(s Stats) uint64 { return s.FastPathMisses }},
	{"nf_fastpath_evictions_total", "Flow-cache entries displaced or reclaimed dead.", func(s Stats) uint64 { return s.FastPathEvictions }},
	{"nf_fastpath_bypassed_total", "Packets sent around the flow cache in cold mode.", func(s Stats) uint64 { return s.FastPathBypassed }},
}

// telHists orders the telemetry histograms for exposition. The path
// label splits the shared per-packet-cost metric by how the burst was
// resolved.
var telHists = []struct {
	name, labels, help string
	get                func(telemetry.Snapshot) telemetry.HistSnapshot
}{
	{"nf_poll_ns", "", "Wall time of one non-empty poll, nanoseconds.",
		func(s telemetry.Snapshot) telemetry.HistSnapshot { return s.PollNs }},
	{"nf_pkt_ns", `path="fast",`, "Amortized per-packet cost, nanoseconds, by resolution path.",
		func(s telemetry.Snapshot) telemetry.HistSnapshot { return s.FastPktNs }},
	{"nf_pkt_ns", `path="slow",`, "Amortized per-packet cost, nanoseconds, by resolution path.",
		func(s telemetry.Snapshot) telemetry.HistSnapshot { return s.SlowPktNs }},
	{"nf_burst_occupancy", "", "Packets per non-empty RX burst.",
		func(s telemetry.Snapshot) telemetry.HistSnapshot { return s.BurstOccupancy }},
	{"nf_tx_drain", "", "Mbufs per non-empty TX flush.",
		func(s telemetry.Snapshot) telemetry.HistSnapshot { return s.TxDrain }},
}

// writeProm renders the Prometheus text exposition: the Stats
// counters, the per-reason totals with their drop/forward class, and
// the merged per-worker histograms in cumulative-bucket form.
func (m *Metrics) writeProm(w io.Writer) {
	for _, c := range statCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
		for _, s := range m.sources {
			fmt.Fprintf(w, "%s{nf=%q} %d\n", c.name, s.Name, c.get(s.Snapshot()))
		}
	}

	headed := false
	for _, s := range m.sources {
		if s.Reasons == nil || s.ReasonCounts == nil {
			continue
		}
		if !headed {
			fmt.Fprintf(w, "# HELP nf_reason_total Packets per declared, path-conformance-checked outcome reason.\n# TYPE nf_reason_total counter\n")
			headed = true
		}
		counts := s.ReasonCounts()
		for id, n := range counts {
			rid := telemetry.ReasonID(id)
			class := "forward"
			if s.Reasons.IsDrop(rid) {
				class = "drop"
			}
			fmt.Fprintf(w, "nf_reason_total{nf=%q,reason=%q,class=%q} %d\n",
				s.Name, s.Reasons.Name(rid), class, n)
		}
	}

	snaps := make(map[string]telemetry.Snapshot)
	var telSources []string
	for _, s := range m.sources {
		if s.Telemetry == nil {
			continue
		}
		t := s.Telemetry()
		if t == nil {
			continue
		}
		snaps[s.Name] = t.Snapshot()
		telSources = append(telSources, s.Name)
	}
	lastName := ""
	for _, h := range telHists {
		if h.name != lastName {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
			lastName = h.name
		}
		for _, name := range telSources {
			writePromHist(w, h.name, fmt.Sprintf("nf=%q,%s", name, h.labels), h.get(snaps[name]))
		}
	}
}

// writePromHist renders one merged histogram in Prometheus cumulative
// form, trimming trailing empty buckets (the le bounds are the
// log2-bucket inclusive upper bounds, 2^k − 1).
func writePromHist(w io.Writer, name, labels string, s telemetry.HistSnapshot) {
	var cum uint64
	for k := 0; k <= s.MaxBucket(); k++ {
		cum += s.Buckets[k]
		fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, labels, telemetry.UpperBound(k), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, s.Count)
	bare := strings.TrimSuffix(labels, ",")
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, bare, s.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, bare, s.Count)
}

// handleTrace renders the sampled per-packet trace rings as one JSON
// object {source: [records]}, oldest first per worker. Sources without
// telemetry (or with it disabled) are absent.
func (m *Metrics) handleTrace(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string][]telemetry.Record)
	for _, s := range m.sources {
		if s.Telemetry == nil {
			continue
		}
		t := s.Telemetry()
		if t == nil {
			continue
		}
		recs := t.TraceSnapshot()
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].Worker != recs[j].Worker {
				return recs[i].Worker < recs[j].Worker
			}
			return recs[i].Seq < recs[j].Seq
		})
		out[s.Name] = recs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// Addr returns the endpoint's actual listen address (useful with an
// ephemeral ":0" bind).
func (m *Metrics) Addr() string { return m.ln.Addr().String() }

// Handle mounts an additional handler on the endpoint's mux — the hook
// the control plane uses to share the metrics listener. Call it before
// traffic reaches the pattern; ServeMux registration is not
// synchronized against serving.
func (m *Metrics) Handle(pattern string, h http.Handler) {
	m.mux.Handle(pattern, h)
}

// Close stops serving immediately — in-flight scrapes are abandoned —
// and releases the sources' expvar slots: the write-once registry
// entries stay published but report nil until a later ServeMetrics
// rebinds the names.
func (m *Metrics) Close() error {
	err := m.srv.Close()
	unbindExpvar(m.sources)
	return err
}

// Shutdown is the graceful counterpart of Close: it stops accepting
// new connections, waits for in-flight requests to finish (bounded by
// ctx), then releases the expvar slots. A control verb that arrived
// just before shutdown gets its response instead of a reset.
func (m *Metrics) Shutdown(ctx context.Context) error {
	err := m.srv.Shutdown(ctx)
	unbindExpvar(m.sources)
	return err
}
