package nf

import (
	"vignat/internal/fastpath"
	"vignat/internal/libvig"
)

// FastPather is implemented by NFs that participate in the engine's
// established-flow cache (Config.FastPath): the engine consults
// FastOffer after a forwarded slow-path packet to learn which state
// the verdict resolved against, and routes subsequent packets of the
// same flow through FastHit, skipping the NF's full per-packet walk.
//
// The contract that keeps the cache invisible to observers:
//
//   - FastOffer is a read-only lookup. Given the packet's
//     pre-processing key, it returns the NF-opaque handle (aux) a hit
//     should touch and a fastpath.Guard that dies when the underlying
//     state is erased. ok=false declines the offer (outcomes that may
//     change while the state lives — a balancer's backend-side
//     passthrough, which a later sticky entry could turn into a
//     rewrite — must decline).
//   - FastHit performs exactly the state mutations and counter
//     movements the slow path's established branch would perform on
//     this packet (rejuvenation, charging, per-NF counters) and
//     returns the same verdict. Header rewriting is not its job — the
//     engine replays the entry's template.
//   - Erasing guarded state must bump the guard's generation (the NF
//     wires its erasure paths to a fastpath.GenTable), so a stale
//     entry misses and the packet takes the slow path.
type FastPather interface {
	// FastPathEnabled reports whether the NF declares fast-path hooks
	// at all (wrappers forward this; the engine resolves it once at
	// construction).
	FastPathEnabled() bool
	FastOffer(key fastpath.Key) (aux uint64, guard fastpath.Guard, ok bool)
	FastHit(aux uint64, pktLen int, now libvig.Time) Verdict
}

// FastHitFunc is a cache-hit handler pre-bound to its NF state: what
// FastHit does, minus the interface dispatch. The pipeline resolves
// one per shard at construction (FastHitFuncer when available, a bound
// FastHit otherwise) so the per-hit call is a single indirect jump.
type FastHitFunc func(aux uint64, pktLen int, now libvig.Time) Verdict

// FastHitFuncer is optionally implemented by FastPathers that can hand
// out their hit handler as a pre-bound closure (nfkit's adapter does;
// wrappers forward to the innermost implementation).
type FastHitFuncer interface {
	FastHitFunc() FastHitFunc
}

// FastPathCounter receives the engine's per-burst flow-cache counters
// for a shard. nf.CountedShards implements it (the counters land in
// the same padded cells the metrics endpoint scrapes); the pipeline
// resolves it from its NF once at construction.
type FastPathCounter interface {
	AddFastPath(shard int, hits, misses, evictions, bypassed uint64)
}

// syncer lets the engine publish a counted shard's pending counter
// deltas after a fast-processed burst (CountedNF implements it).
type syncer interface{ Sync() }

// quietExpirer lets the engine run a shard's expiry sweep without the
// per-call stats publication Expire performs (CountedNF implements
// it); the burst-end Sync picks the movement up instead.
type quietExpirer interface{ ExpireQuiet(now libvig.Time) }

// quietBatcher lets the engine process a slow run without the per-call
// stats publication ProcessBatch performs and at the engine's burst
// timestamp instead of a fresh clock read (CountedNF implements it).
// A mixed burst fragments into one run per cache hit, and paying the
// publication atomics plus a clock read per fragment rather than per
// burst is measurable at mid hit rates; the burst-end Sync publishes
// everything at once.
type quietBatcher interface {
	ProcessBatchQuiet(pkts []Pkt, verdicts []Verdict, now libvig.Time)
}

// BatchAtter is optionally implemented by NFs that can process a burst
// at a caller-supplied timestamp instead of reading their own clock
// (nfkit adapters do). CountedNF's quiet batch path uses it so every
// fragment of a fast-path burst shares the engine's one clock read —
// the exact semantics of "batches read the clock once", applied to the
// whole burst rather than each fragment.
type BatchAtter interface {
	ProcessBatchAt(pkts []Pkt, verdicts []Verdict, now libvig.Time)
}

// Cold-mode (adaptive bypass) parameters: after coldAfter consecutive
// all-miss bursts a worker idles its classifier, probing only one in
// coldSample packets (the rest take the slow path untouched, which is
// always correct). A sampled hit — established traffic returning to a
// still-warm table — or a sampled install — a new flow seen twice,
// the front of a new established population — re-warms it. Under
// sustained churn, the steady state of a flood of never-repeating
// flows, classification overhead falls to 1/coldSample of itself.
const (
	coldAfter  = 8
	coldSample = 16 // must be a power of two
)

// processShardFast runs one shard's steered burst through the flow
// cache: cache misses accumulate into runs processed by the NF's
// ProcessBatch exactly as without the cache, hits are resolved in
// place at their exact position in the burst, so every state mutation
// happens in the same order as on the slow path.
//
// The doorkeeper runs at miss time, while the packet's extraction is
// still in registers: misses it admits are queued by burst position,
// and the post-run offer pass revisits only that queue. Under a churn
// flood — all misses, none admitted — the per-packet cost is one
// extract+hash+probe and the offer pass degenerates to nothing; the
// alternative (re-walking the whole run after the NF, re-touching
// every packet's cold metadata to ask the doorkeeper) is what the
// queue exists to avoid.
func (wk *worker) processShardFast(li, s int, now libvig.Time) {
	p := wk.p
	fp := p.fastNFs[s]
	fastHit := p.fastHits[s]
	snf := p.shardNFs[s]
	pkts := wk.pkts[li]
	verd := wk.verd[li]
	meta := wk.meta[li][:len(pkts)]
	wk.offer = wk.offer[:0]
	var hits, misses, bypassed, installed, evictions uint64
	runStart := 0
	oc := 0 // consumed prefix of wk.offer
	sampling := wk.cold
	// expired tracks whether this shard's Fig. 6 sweep has run at the
	// burst's timestamp. In amortized mode the top-of-poll sweep already
	// did; in per-packet mode the first slow run (the NF sweeps in-line
	// per packet) or the first cache hit triggers it, and repeats at the
	// same now are no-ops — nothing new crosses the deadline while now
	// stands still — so once is enough for the whole burst.
	expired := p.amortized
	qe, hasQuiet := snf.(quietExpirer)
	qb, hasQuietBatch := snf.(quietBatcher)
	flushRun := func(end int) {
		if end > runStart {
			if hasQuietBatch {
				qb.ProcessBatchQuiet(pkts[runStart:end], verd[runStart:end], now)
			} else {
				snf.ProcessBatch(pkts[runStart:end], verd[runStart:end])
			}
			expired = true
		}
		if oc < len(wk.offer) {
			next := oc
			for next < len(wk.offer) && int(wk.offer[next]) < end {
				next++
			}
			ins, ev := wk.offerAdmitted(s, fp, pkts, verd, meta, wk.offer[oc:next])
			installed += ins
			evictions += ev
			oc = next
		}
	}
	for i := range pkts {
		if sampling {
			wk.coldTick++
			if wk.coldTick&(coldSample-1) != 0 {
				misses++ // the slow path serves it, unexamined
				bypassed++
				continue
			}
		}
		// The extraction lives in a register-resident local; it reaches
		// the meta array only for doorkeeper-admitted misses — the one
		// case a later pass (offerAdmitted) rereads it. Hits consume it
		// right here, and plain misses never need it again.
		m := fastpath.Extract(pkts[i].Frame)
		if !m.OK {
			misses++
			continue // unparseable for the cache: slow path, like any miss
		}
		lo, hi := m.Words(pkts[i].FromInternal)
		h := fastpath.HashWords(lo, hi)
		m.H = h
		if e := wk.cache.FindWords(lo, hi, h); e != nil && e.Shard() == int32(s) {
			// A candidate hit: the NF-order-preserving point of no
			// return. Everything queued before this packet runs first,
			// then the packet's own Fig. 6 expiry (the engine replays it
			// in per-packet mode; in amortized mode the top-of-poll sweep
			// already ran), and only then is the entry's liveness judged —
			// the expiry may be exactly what kills it.
			flushRun(i)
			runStart = i
			if !expired {
				if hasQuiet {
					qe.ExpireQuiet(now)
				} else {
					snf.Expire(now)
				}
				expired = true
			}
			if !wk.cache.Live(e) {
				wk.cache.Release(e)
				evictions++
				misses++
				continue // state is gone: the slow path re-resolves from scratch
			}
			runStart = i + 1
			v := fastHit(e.Aux(), len(pkts[i].Frame), now)
			if v == Forward && !e.Identity() {
				// Non-rewriting NFs skip the template replay outright —
				// the identity bit was precomputed at install.
				e.Apply(pkts[i].Frame, m)
			}
			verd[i] = v
			hits++
			continue
		}
		misses++
		if wk.cache.Admit(h) {
			meta[i] = m
			wk.offer = append(wk.offer, int32(i))
		}
	}
	flushRun(len(pkts))
	if sy, ok := snf.(syncer); ok {
		sy.Sync()
	}
	// Mode transitions. A cold worker re-warms on evidence of
	// established traffic: a sampled hit (returning flows, table still
	// warm) or a sampled install (a new flow's second sighting — the
	// front of a new established population). A warm worker goes cold
	// after coldAfter consecutive bursts without a single hit.
	if wk.cold {
		if hits > 0 || installed > 0 {
			wk.cold, wk.coldStreak = false, 0
		}
	} else if hits == 0 && len(pkts) > 0 {
		wk.coldStreak++
		if wk.coldStreak >= coldAfter {
			wk.cold = true
		}
	} else {
		wk.coldStreak = 0
	}
	wk.stats.FastPathHits += hits
	wk.stats.FastPathMisses += misses
	wk.stats.FastPathBypassed += bypassed
	wk.stats.FastPathEvictions += evictions
	if p.fastSink != nil {
		p.fastSink.AddFastPath(s, hits, misses, evictions, bypassed)
	}
}

// offerAdmitted walks the doorkeeper-admitted positions of a
// just-processed slow run and installs cache entries for those the NF
// both forwarded and vouches for, diffing each packet's pre-extracted
// tuple against its (possibly rewritten) frame to build the rewrite
// template. The doorkeeper admits a key only on its second sighting,
// so churn floods of never-repeating flows queue nothing here and
// cannot thrash the table. It returns the number of entries installed
// and the number of live entries displaced doing so.
func (wk *worker) offerAdmitted(s int, fp FastPather, pkts []Pkt, verd []Verdict, meta []fastpath.Meta, idx []int32) (installed, evictions uint64) {
	for _, jj := range idx {
		j := int(jj)
		if verd[j] != Forward {
			continue
		}
		key := fastpath.Key{ID: meta[j].FlowID(), FromInternal: pkts[j].FromInternal}
		aux, guard, ok := fp.FastOffer(key)
		if !ok {
			continue
		}
		tmpl := fastpath.MakeTemplate(meta[j], pkts[j].Frame)
		installed++
		if wk.cache.Install(key, meta[j].H, int32(s), aux, guard, tmpl) {
			evictions++
		}
	}
	return installed, evictions
}
