// Concurrency coverage for the stats-scrape surfaces: CountedShards'
// padded atomic cells scraped while policer shards process traffic on
// their own goroutines (the metrics-endpoint pattern, pinned under
// -race by CI), and the HTTP/expvar endpoint itself serving mid-run.
package nf_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/policer"
)

const scrapeShards = 4

// buildScrapePolicer returns a sharded policer plus per-shard ingress
// frames, pre-steered with ShardOf so each driving goroutine touches
// only the shard it owns.
func buildScrapePolicer(t testing.TB) (*policer.Sharded, [][][]byte) {
	t.Helper()
	s, err := policer.NewSharded(policer.Config{
		Rate: 1 << 30, Burst: 1 << 30, Capacity: 1024, Timeout: time.Hour,
	}, libvig.NewVirtualClock(0), scrapeShards)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][][]byte, scrapeShards)
	for i := 0; i < 256; i++ {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP: flow.MakeAddr(198, 51, 100, 7), SrcPort: 443,
			DstIP: flow.MakeAddr(10, 0, byte(i>>8), byte(i)), DstPort: 8080,
			Proto: flow.UDP,
		}, PayloadLen: 16}
		frame := netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
		sh := s.ShardOf(frame, false)
		frames[sh] = append(frames[sh], frame)
	}
	for sh := range frames {
		if len(frames[sh]) == 0 {
			t.Fatalf("shard %d got no subscribers", sh)
		}
	}
	return s, frames
}

// TestCountedShardsConcurrentScrapeWithPolicer drives every policer
// shard from its own goroutine — the run-to-completion arrangement —
// while scraper goroutines hammer StatsSnapshot and per-shard
// snapshots. Snapshots must be race-free and monotone.
func TestCountedShardsConcurrentScrapeWithPolicer(t *testing.T) {
	s, frames := buildScrapePolicer(t)
	const perShard = 3000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var last uint64
		for {
			snap := s.StatsSnapshot()
			if snap.Processed < last {
				t.Error("aggregate snapshot went backwards")
				return
			}
			last = snap.Processed
			for i := 0; i < s.Shards(); i++ {
				_ = s.ShardStatsSnapshot(i) // per-shard scrape races the owner too
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < scrapeShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := s.Shard(w) // counted wrapper: every call syncs the cell
			for i := 0; i < perShard; i++ {
				f := frames[w][i%len(frames[w])]
				if shard.Process(f, false) != nf.Forward {
					t.Error("warmed ingress dropped")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	snap := s.StatsSnapshot()
	if snap.Processed != scrapeShards*perShard || snap.Forwarded != scrapeShards*perShard {
		t.Fatalf("final snapshot %+v, want %d processed", snap, scrapeShards*perShard)
	}
}

// TestServeMetricsScrapesUnderTraffic runs the HTTP endpoint against a
// policer being driven concurrently and checks both surfaces: the JSON
// /metrics document and the expvar registry.
func TestServeMetricsScrapesUnderTraffic(t *testing.T) {
	s, frames := buildScrapePolicer(t)
	m, err := nf.ServeMetrics("127.0.0.1:0",
		nf.MetricSource{Name: "vigpol-test", Snapshot: s.StatsSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	for w := 0; w < scrapeShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := s.Shard(w)
			for i := 0; i < 2000; i++ {
				shard.Process(frames[w][i%len(frames[w])], false)
			}
		}(w)
	}
	// Scrape while the workers run, then once after the join.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", m.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]nf.Stats
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if _, ok := doc["vigpol-test"]; !ok {
			t.Fatalf("metrics document missing source: %v", doc)
		}
	}
	wg.Wait()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", m.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]nf.Stats
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := doc["vigpol-test"].Processed; got != scrapeShards*2000 {
		t.Fatalf("endpoint reports %d processed, want %d", got, scrapeShards*2000)
	}
	// The expvar surface carries the same source.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", m.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["nf.vigpol-test"]; !ok {
		t.Fatal("expvar registry missing nf.vigpol-test")
	}
}
