// Concurrency coverage for the stats-scrape surfaces: CountedShards'
// padded atomic cells scraped while policer shards process traffic on
// their own goroutines (the metrics-endpoint pattern, pinned under
// -race by CI), and the HTTP/expvar endpoint itself serving mid-run.
package nf_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vignat/internal/discard"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/nf/telemetry"
	"vignat/internal/policer"
)

const scrapeShards = 4

// generousPolicer is the never-drops configuration the pure-scrape
// tests use; the reason-conformance test swaps in a starved one.
var generousPolicer = policer.Config{
	Rate: 1 << 30, Burst: 1 << 30, Capacity: 1024, Timeout: time.Hour,
}

// buildScrapePolicer returns a sharded policer plus per-shard ingress
// frames, pre-steered with ShardOf so each driving goroutine touches
// only the shard it owns.
func buildScrapePolicer(t testing.TB, cfg policer.Config) (*policer.Sharded, [][][]byte) {
	t.Helper()
	s, err := policer.NewSharded(cfg, libvig.NewVirtualClock(0), scrapeShards)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][][]byte, scrapeShards)
	for i := 0; i < 256; i++ {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP: flow.MakeAddr(198, 51, 100, 7), SrcPort: 443,
			DstIP: flow.MakeAddr(10, 0, byte(i>>8), byte(i)), DstPort: 8080,
			Proto: flow.UDP,
		}, PayloadLen: 16}
		frame := netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
		sh := s.ShardOf(frame, false)
		frames[sh] = append(frames[sh], frame)
	}
	for sh := range frames {
		if len(frames[sh]) == 0 {
			t.Fatalf("shard %d got no subscribers", sh)
		}
	}
	return s, frames
}

// TestCountedShardsConcurrentScrapeWithPolicer drives every policer
// shard from its own goroutine — the run-to-completion arrangement —
// while scraper goroutines hammer StatsSnapshot and per-shard
// snapshots. Snapshots must be race-free and monotone.
func TestCountedShardsConcurrentScrapeWithPolicer(t *testing.T) {
	s, frames := buildScrapePolicer(t, generousPolicer)
	const perShard = 3000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var last uint64
		for {
			snap := s.StatsSnapshot()
			if snap.Processed < last {
				t.Error("aggregate snapshot went backwards")
				return
			}
			last = snap.Processed
			for i := 0; i < s.Shards(); i++ {
				_ = s.ShardStatsSnapshot(i) // per-shard scrape races the owner too
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < scrapeShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := s.Shard(w) // counted wrapper: every call syncs the cell
			for i := 0; i < perShard; i++ {
				f := frames[w][i%len(frames[w])]
				if shard.Process(f, false) != nf.Forward {
					t.Error("warmed ingress dropped")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	snap := s.StatsSnapshot()
	if snap.Processed != scrapeShards*perShard || snap.Forwarded != scrapeShards*perShard {
		t.Fatalf("final snapshot %+v, want %d processed", snap, scrapeShards*perShard)
	}
}

// TestServeMetricsScrapesUnderTraffic runs the HTTP endpoint against a
// policer being driven concurrently and checks both surfaces: the JSON
// /metrics document and the expvar registry.
func TestServeMetricsScrapesUnderTraffic(t *testing.T) {
	s, frames := buildScrapePolicer(t, generousPolicer)
	m, err := nf.ServeMetrics("127.0.0.1:0",
		nf.MetricSource{Name: "vigpol-test", Snapshot: s.StatsSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	for w := 0; w < scrapeShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := s.Shard(w)
			for i := 0; i < 2000; i++ {
				shard.Process(frames[w][i%len(frames[w])], false)
			}
		}(w)
	}
	// Scrape while the workers run, then once after the join.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", m.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]nf.Stats
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if _, ok := doc["vigpol-test"]; !ok {
			t.Fatalf("metrics document missing source: %v", doc)
		}
	}
	wg.Wait()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", m.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]nf.Stats
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := doc["vigpol-test"].Processed; got != scrapeShards*2000 {
		t.Fatalf("endpoint reports %d processed, want %d", got, scrapeShards*2000)
	}
	// The expvar surface carries the same source.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", m.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["nf.vigpol-test"]; !ok {
		t.Fatal("expvar registry missing nf.vigpol-test")
	}
}

// scrapeProm fetches /metrics the way a Prometheus scraper does and
// returns the text exposition.
func scrapeProm(t *testing.T, addr string) string {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus scrape negotiated content-type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// promVals returns the sample values of metric whose label set contains
// every substring in sel.
func promVals(t *testing.T, doc, metric string, sel ...string) []uint64 {
	t.Helper()
	var out []uint64
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, metric+"{") {
			continue
		}
		matched := true
		for _, s := range sel {
			if !strings.Contains(line, s) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			t.Fatalf("non-integer sample in %q: %v", line, err)
		}
		out = append(out, v)
	}
	return out
}

func sumU64(vs []uint64) uint64 {
	var s uint64
	for _, v := range vs {
		s += v
	}
	return s
}

// TestServeMetricsDuplicateAndReopen pins the expvar collision
// contract: a second endpoint reusing a live source name is an error
// naming the duplicate (not a silent skip), and after Close the
// write-once expvar entry serves the NEW source on reopen rather than
// a stale closure over the old one.
func TestServeMetricsDuplicateAndReopen(t *testing.T) {
	snapA := func() nf.Stats { return nf.Stats{Processed: 1} }
	m1, err := nf.ServeMetrics("127.0.0.1:0", nf.MetricSource{Name: "dup-src", Snapshot: snapA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf.ServeMetrics("127.0.0.1:0",
		nf.MetricSource{Name: "dup-src", Snapshot: snapA}); err == nil || !strings.Contains(err.Error(), "dup-src") {
		m1.Close()
		t.Fatalf("duplicate live source not rejected by name (err=%v)", err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// The same name twice in one call is the same collision.
	if _, err := nf.ServeMetrics("127.0.0.1:0",
		nf.MetricSource{Name: "dup-twice", Snapshot: snapA},
		nf.MetricSource{Name: "dup-twice", Snapshot: snapA}); err == nil || !strings.Contains(err.Error(), "dup-twice") {
		t.Fatalf("same-call duplicate not rejected by name (err=%v)", err)
	}
	snapB := func() nf.Stats { return nf.Stats{Processed: 77} }
	m2, err := nf.ServeMetrics("127.0.0.1:0", nf.MetricSource{Name: "dup-src", Snapshot: snapB})
	if err != nil {
		t.Fatalf("reopen after close rejected: %v", err)
	}
	defer m2.Close()
	resp, err := http.Get("http://" + m2.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	var got nf.Stats
	if err := json.Unmarshal(vars["nf.dup-src"], &got); err != nil {
		t.Fatalf("nf.dup-src not decodable after reopen: %v", err)
	}
	if got.Processed != 77 {
		t.Fatalf("expvar serves Processed=%d after reopen, want 77 (stale closure?)", got.Processed)
	}
}

// TestServeMetricsPrometheusReasonConformance is the in-process scrape
// conformance check CI pins under -race: a starved policer driven from
// one goroutine per shard while the Prometheus surface is scraped
// mid-traffic. Counters must be monotone across scrapes, and once
// traffic quiesces the drop-class reason totals must sum exactly to
// Dropped (the taxonomy invariant the symbolic cross-check promises).
func TestServeMetricsPrometheusReasonConformance(t *testing.T) {
	starved := policer.Config{Rate: 1, Burst: 1, Capacity: 1024, Timeout: time.Hour}
	s, frames := buildScrapePolicer(t, starved)
	m, err := nf.ServeMetrics("127.0.0.1:0", nf.SourceOf("vigpol-prom", s, s.StatsSnapshot, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const perShard = 1500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var last uint64
		for {
			doc := scrapeProm(t, m.Addr())
			vals := promVals(t, doc, "nf_processed_total", `nf="vigpol-prom"`)
			if len(vals) != 1 {
				t.Errorf("want one nf_processed_total sample, got %d", len(vals))
				return
			}
			if vals[0] < last {
				t.Errorf("nf_processed_total went backwards: %d then %d", last, vals[0])
				return
			}
			last = vals[0]
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < scrapeShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := s.Shard(w)
			for i := 0; i < perShard; i++ {
				f := frames[w][i%len(frames[w])]
				// Ingress: the 1-byte budget rejects every frame (over
				// rate). Egress: unmetered passthrough, forwarded.
				if shard.Process(f, false) != nf.Drop {
					t.Error("starved ingress forwarded")
					return
				}
				if shard.Process(f, true) != nf.Forward {
					t.Error("egress passthrough dropped")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	const want = scrapeShards * perShard
	doc := scrapeProm(t, m.Addr())
	dropped := promVals(t, doc, "nf_dropped_total", `nf="vigpol-prom"`)
	if len(dropped) != 1 || dropped[0] != want {
		t.Fatalf("nf_dropped_total %v, want [%d]", dropped, want)
	}
	dropSum := sumU64(promVals(t, doc, "nf_reason_total", `nf="vigpol-prom"`, `class="drop"`))
	if dropSum != dropped[0] {
		t.Fatalf("drop-class reasons sum to %d, nf_dropped_total is %d", dropSum, dropped[0])
	}
	fwdSum := sumU64(promVals(t, doc, "nf_reason_total", `nf="vigpol-prom"`, `class="forward"`))
	if fwdSum != want {
		t.Fatalf("forward-class reasons sum to %d, want %d", fwdSum, want)
	}
	if over := promVals(t, doc, "nf_reason_total", `reason="drop_over_rate"`); sumU64(over) != want {
		t.Fatalf("drop_over_rate %v, want all %d ingress drops", over, want)
	}

	// The JSON surface carries the same reasons and agrees with the
	// snapshot the cells report.
	resp, err := http.Get("http://" + m.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jdoc map[string]struct {
		nf.Stats
		Reasons map[string]uint64 `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jdoc); err != nil {
		t.Fatal(err)
	}
	src := jdoc["vigpol-prom"]
	var jsonDropSum uint64
	for name, n := range src.Reasons {
		if r, ok := policer.Reasons.ByName(name); ok && r.Drop {
			jsonDropSum += n
		}
	}
	if jsonDropSum != src.Dropped || src.Dropped != want {
		t.Fatalf("JSON reasons: drop-class sum %d vs Dropped %d (want %d)", jsonDropSum, src.Dropped, want)
	}
}

// TestMetricsTelemetryTraceExposition runs the engine with telemetry
// on and checks the two surfaces it feeds: the Prometheus histogram
// rendering and the sampled /debug/trace ring (including the
// NF-declared reason label on a dropped packet).
func TestMetricsTelemetryTraceExposition(t *testing.T) {
	pool, intPort, extPort := twoPorts(t, 32)
	pipe, err := nf.NewPipeline(discard.NewFrameNF(), nf.Config{
		Internal: intPort, External: extPort,
		Telemetry: 1, TraceSample: 1, TimingStride: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := nf.ServeMetrics("127.0.0.1:0",
		nf.SourceOf("discard-tel", pipe.NF(), pipe.NF().NFStats, pipe))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	buf := make([]byte, 2048)
	host, server := flow.MakeAddr(10, 0, 0, 1), flow.MakeAddr(198, 51, 100, 1)
	for _, dst := range []uint16{80, 9} { // one forward, one drop, separate bursts
		id := flow.ID{SrcIP: host, DstIP: server, SrcPort: 4000, DstPort: dst}
		if !intPort.DeliverRx(udpFrame(t, buf, id), 0) {
			t.Fatal("rx rejected")
		}
		if _, err := pipe.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	drainAll(t, extPort, pool)

	doc := scrapeProm(t, m.Addr())
	if n := len(promVals(t, doc, "nf_poll_ns_bucket", `nf="discard-tel"`)); n == 0 {
		t.Fatal("no nf_poll_ns_bucket samples with telemetry enabled")
	}
	if slow := promVals(t, doc, "nf_pkt_ns_count", `path="slow"`); len(slow) != 1 || slow[0] != 2 {
		t.Fatalf("nf_pkt_ns_count{path=slow} %v, want [2]", slow)
	}
	if occ := promVals(t, doc, "nf_burst_occupancy_count", `nf="discard-tel"`); len(occ) != 1 || occ[0] != 2 {
		t.Fatalf("nf_burst_occupancy_count %v, want [2]", occ)
	}

	resp, err := http.Get("http://" + m.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces map[string][]telemetry.Record
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	recs := traces["discard-tel"]
	if len(recs) != 2 {
		t.Fatalf("trace ring holds %d records, want 2 (sample=1, 2 bursts)", len(recs))
	}
	var sawDrop bool
	for _, r := range recs {
		if !r.Forwarded {
			sawDrop = true
			if r.Reason != "drop_port9" {
				t.Fatalf("dropped record carries reason %q, want drop_port9", r.Reason)
			}
			if r.DstPort != 9 {
				t.Fatalf("dropped record tuple %v:%d, want dst port 9", r.Dst, r.DstPort)
			}
		}
	}
	if !sawDrop {
		t.Fatal("no dropped packet in the trace ring")
	}

	// The profiling surface is mounted on the same endpoint.
	resp2, err := http.Get("http://" + m.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ returned %d", resp2.StatusCode)
	}
}
