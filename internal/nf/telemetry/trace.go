package telemetry

import "sync"

// Record is one sampled packet's postmortem line: the tuple, which
// chain element decided its fate, the verdict, the NF-declared reason,
// and the burst's per-packet cost. Records are best-effort — a 1-in-N
// sample for debugging, not an accounting surface (the reason counters
// are the accounted, conformance-checked numbers).
type Record struct {
	// Seq is the worker-local sample sequence number (monotone).
	Seq uint64 `json:"seq"`
	// Now is the engine clock (ns) when the burst was processed.
	Now int64 `json:"now_ns"`
	// Worker is the owning worker/queue-pair id.
	Worker int `json:"worker"`
	// Src..Proto are the sampled packet's 5-tuple (empty/zero when the
	// frame didn't parse far enough for the extractor).
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
	// FromInternal is the packet's ingress side.
	FromInternal bool `json:"from_internal"`
	// Forwarded is the verdict.
	Forwarded bool `json:"forwarded"`
	// Elem is the chain element index that decided a drop (-1 when
	// forwarded, unknown, or the NF is not a chain).
	Elem int `json:"elem"`
	// Reason is the NF-declared reason label ("" when the shard NF
	// declares no taxonomy).
	Reason string `json:"reason"`
	// PktNs is the burst's amortized per-packet cost in nanoseconds.
	PktNs uint64 `json:"pkt_ns"`
	// FastPath reports whether the burst was resolved entirely by the
	// established-flow cache.
	FastPath bool `json:"fast_path"`
}

// ringSize is the per-worker trace capacity. Small on purpose: the
// ring answers "what happened to packets like mine just now", not
// "what happened all day".
const ringSize = 256

// Ring is a per-worker sampled trace buffer. The single worker writes
// under the mutex (cheap: writes happen 1-in-N packets), scrapers copy
// under the same mutex.
type Ring struct {
	mu   sync.Mutex
	recs [ringSize]Record
	n    uint64 // total records ever written
}

// Push appends r, overwriting the oldest record when full.
func (r *Ring) Push(rec Record) {
	r.mu.Lock()
	rec.Seq = r.n
	r.recs[r.n%ringSize] = rec
	r.n++
	r.mu.Unlock()
}

// Snapshot returns the buffered records, oldest first.
func (r *Ring) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > ringSize {
		out := make([]Record, 0, ringSize)
		for i := n; i < n+ringSize; i++ {
			out = append(out, r.recs[i%ringSize])
		}
		return out
	}
	return append([]Record(nil), r.recs[:n]...)
}
