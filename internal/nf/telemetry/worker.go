package telemetry

// TimingStride is the poll-sampling period of the timing histograms:
// one poll in TimingStride is fully instrumented (poll wall time plus
// per-burst fast/slow cost, four clock reads), the rest pay a single
// counter increment. Clock reads are the dominant telemetry cost —
// ~35ns each against polls that often carry only one 32-packet burst
// — so sampling them is what keeps the enabled engine inside its ≤3%
// budget. Histogram weights still carry real packet counts, and the
// count-based histograms (burst occupancy, TX drain) and all engine
// counters remain exact; only the timing distributions are sampled.
// Must be a power of two (the hot path masks, it does not divide).
const TimingStride = 8

// WorkerTel is one worker's private telemetry block: five histograms
// and the sampled trace ring, all single-writer (the worker that owns
// the queue pair). A worker never touches another worker's block, so
// the hot path has no sharing; scrapers merge at read time.
type WorkerTel struct {
	// PollNs is the wall time of one non-empty PollWorker call, timed
	// polls only (one in TimingStride).
	PollNs Hist
	// FastPktNs is the amortized per-packet cost (ns) of bursts fully
	// resolved by the established-flow cache; SlowPktNs covers every
	// other burst (full stateless-logic walk, cache misses, cold-mode
	// bypass). The split is the PR 6 fast path's first tail view.
	FastPktNs Hist
	SlowPktNs Hist
	// BurstOccupancy is the RX burst size distribution (packets per
	// non-empty RxBurst).
	BurstOccupancy Hist
	// TxDrain is the TX flush depth distribution (mbufs per non-empty
	// txFlush).
	TxDrain Hist
	// Trace is the sampled per-packet ring.
	Trace Ring
}

// PipelineTel is the engine-level telemetry: one WorkerTel per worker
// plus the sampling period. A nil *PipelineTel is the disabled state —
// the hot path checks the one pointer and does nothing else.
type PipelineTel struct {
	workers []*WorkerTel
	// Sample is the trace sampling period: every Sample-th packet
	// leaves a trace record.
	Sample uint64
}

// NewPipelineTel builds telemetry for nWorkers workers with the given
// trace sampling period (0 disables tracing but keeps histograms).
func NewPipelineTel(nWorkers int, sample uint64) *PipelineTel {
	t := &PipelineTel{workers: make([]*WorkerTel, nWorkers), Sample: sample}
	for i := range t.workers {
		t.workers[i] = &WorkerTel{}
	}
	return t
}

// Worker returns worker w's block.
func (t *PipelineTel) Worker(w int) *WorkerTel { return t.workers[w] }

// Workers returns the worker count.
func (t *PipelineTel) Workers() int { return len(t.workers) }

// Snapshot is the merged scrape view.
type Snapshot struct {
	PollNs         HistSnapshot `json:"poll_ns"`
	FastPktNs      HistSnapshot `json:"fast_pkt_ns"`
	SlowPktNs      HistSnapshot `json:"slow_pkt_ns"`
	BurstOccupancy HistSnapshot `json:"burst_occupancy"`
	TxDrain        HistSnapshot `json:"tx_drain"`
}

// Snapshot merges every worker's histograms. Safe to call from any
// goroutine while workers run.
func (t *PipelineTel) Snapshot() Snapshot {
	var s Snapshot
	if t == nil {
		return s
	}
	for _, w := range t.workers {
		s.PollNs.Merge(w.PollNs.Snapshot())
		s.FastPktNs.Merge(w.FastPktNs.Snapshot())
		s.SlowPktNs.Merge(w.SlowPktNs.Snapshot())
		s.BurstOccupancy.Merge(w.BurstOccupancy.Snapshot())
		s.TxDrain.Merge(w.TxDrain.Snapshot())
	}
	return s
}

// TraceSnapshot returns all workers' buffered trace records, grouped
// by worker, oldest first within each.
func (t *PipelineTel) TraceSnapshot() []Record {
	if t == nil {
		return nil
	}
	var out []Record
	for _, w := range t.workers {
		out = append(out, w.Trace.Snapshot()...)
	}
	return out
}
