// Package telemetry is the engine's zero-when-disabled observability
// layer: per-NF drop/forward reason taxonomies cross-checked against
// the symbolic path enumeration, per-worker log-bucketed latency
// histograms, and a sampled per-packet trace ring.
//
// The design discipline mirrors the engine's stats discipline
// (internal/nf/stats.go): every hot-path counter and histogram bucket
// has exactly one writer — the owning worker goroutine — and is stored
// in an atomic.Uint64 updated with Store(Load()+n). On amd64/arm64
// that compiles to plain loads and stores (no LOCK'd read-modify-write,
// no contention), while scrapers on other goroutines read the same
// words atomically, so the engine stays race-detector-clean without
// paying for synchronization the single-writer structure doesn't need.
//
// When telemetry is disabled the pipeline holds a nil *PipelineTel and
// the hot path pays one pointer nil-check per burst — unmeasurable.
package telemetry
