package telemetry

import "fmt"

// ReasonID names one outcome of an NF's stateless logic — a single
// verified execution-path class: "dropped because the session table is
// full", "forwarded out after rejuvenation". IDs are small dense
// integers (array indices into the per-shard reason counters), declared
// per NF as a ReasonSet on its nfkit.Decl next to the symbolic spec,
// and cross-checked against the enumerated symbolic paths: every
// declared reason must be reachable by ≥1 path and every drop path
// must map to exactly one reason (nfkit.VerifyReasons).
type ReasonID uint8

// Reason is one declared outcome class.
type Reason struct {
	// ID is the dense index; the n reasons of a set must carry IDs
	// 0..n-1 in declaration order.
	ID ReasonID
	// Name is the snake_case label used in /metrics (Prometheus
	// `reason` label) and the trace ring.
	Name string
	// Drop reports whether packets with this reason are dropped; the
	// complement covers every way a packet leaves the NF alive
	// (forwarded, passed through). The split is what lets scrapers
	// assert Σ drop-reasons == Dropped.
	Drop bool
	// Help is a one-line description for documentation output.
	Help string
}

// ReasonSet is one NF's complete, validated outcome taxonomy.
type ReasonSet struct {
	nf      string
	reasons []Reason
	byName  map[string]ReasonID
}

// NewReasonSet validates and freezes an NF's taxonomy. IDs must be
// dense 0..n-1 in order, names unique and nonempty.
func NewReasonSet(nfName string, reasons ...Reason) (*ReasonSet, error) {
	if nfName == "" {
		return nil, fmt.Errorf("telemetry: reason set needs an NF name")
	}
	if len(reasons) == 0 {
		return nil, fmt.Errorf("telemetry: %s: empty reason set", nfName)
	}
	if len(reasons) > 256 {
		return nil, fmt.Errorf("telemetry: %s: %d reasons overflow ReasonID", nfName, len(reasons))
	}
	byName := make(map[string]ReasonID, len(reasons))
	for i, r := range reasons {
		if r.ID != ReasonID(i) {
			return nil, fmt.Errorf("telemetry: %s: reason %q has ID %d, want %d (IDs must be dense, in order)",
				nfName, r.Name, r.ID, i)
		}
		if r.Name == "" {
			return nil, fmt.Errorf("telemetry: %s: reason %d has no name", nfName, i)
		}
		if _, dup := byName[r.Name]; dup {
			return nil, fmt.Errorf("telemetry: %s: duplicate reason name %q", nfName, r.Name)
		}
		byName[r.Name] = r.ID
	}
	return &ReasonSet{nf: nfName, reasons: append([]Reason(nil), reasons...), byName: byName}, nil
}

// MustReasonSet is NewReasonSet that panics on a malformed set — for
// package-level taxonomy declarations, which are programming errors to
// get wrong.
func MustReasonSet(nfName string, reasons ...Reason) *ReasonSet {
	s, err := NewReasonSet(nfName, reasons...)
	if err != nil {
		panic(err)
	}
	return s
}

// NF returns the owning NF's name.
func (s *ReasonSet) NF() string { return s.nf }

// Len returns the number of declared reasons.
func (s *ReasonSet) Len() int { return len(s.reasons) }

// Reasons returns the declared reasons in ID order.
func (s *ReasonSet) Reasons() []Reason { return append([]Reason(nil), s.reasons...) }

// Name returns the label of id, or "reason(<id>)" for an undeclared id.
func (s *ReasonSet) Name(id ReasonID) string {
	if int(id) < len(s.reasons) {
		return s.reasons[id].Name
	}
	return fmt.Sprintf("reason(%d)", id)
}

// IsDrop reports whether id is a drop-class reason.
func (s *ReasonSet) IsDrop(id ReasonID) bool {
	return int(id) < len(s.reasons) && s.reasons[id].Drop
}

// ByName returns the reason named name.
func (s *ReasonSet) ByName(name string) (Reason, bool) {
	id, ok := s.byName[name]
	if !ok {
		return Reason{}, false
	}
	return s.reasons[id], true
}

// SumDrops totals the drop-class counters of counts (indexed by
// ReasonID). Extra trailing entries beyond the declared set are
// ignored.
func (s *ReasonSet) SumDrops(counts []uint64) uint64 {
	var sum uint64
	for i, r := range s.reasons {
		if r.Drop && i < len(counts) {
			sum += counts[i]
		}
	}
	return sum
}
