package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every histogram: bucket k
// holds observations v with bits.Len64(v) == k, i.e. v in
// [2^(k-1), 2^k-1] (bucket 0 holds v == 0), clamped at the top. The
// inclusive upper bound of bucket k is 2^k − 1 nanoseconds — a
// power-of-two log scale wide enough for anything from sub-ns
// per-packet costs to multi-second stalls.
const HistBuckets = 64

// Hist is a log2-bucketed histogram with a single-writer update
// discipline: exactly one goroutine calls Observe*, any goroutine may
// Snapshot. Updates are atomic.Uint64 Store(Load()+n) — plain MOVs on
// the hot path, no LOCK'd RMW, no false sharing with other workers
// because each worker owns a whole WorkerTel.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one observation. Single writer only.
func (h *Hist) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v (the batched form: a
// burst's per-packet cost is recorded once as ObserveN(total/n, n)).
// Single writer only.
func (h *Hist) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	b := &h.buckets[bucketOf(v)]
	b.Store(b.Load() + n)
	h.count.Store(h.count.Load() + n)
	h.sum.Store(h.sum.Load() + v*n)
}

// Snapshot returns a consistent-enough copy for scraping: each word is
// read atomically; cross-word skew is at most the observations racing
// the scrape, which monotone counters tolerate.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a scraped histogram, mergeable across workers.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64 `json:"buckets"`
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// UpperBound returns bucket k's inclusive upper bound, 2^k − 1 (the
// Prometheus `le` value). The top bucket is unbounded (+Inf in
// exposition); its numeric bound is returned for callers that want one.
func UpperBound(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// MaxBucket returns the index of the highest nonzero bucket, or -1 for
// an empty histogram — exposition trims trailing zero buckets with it.
func (s *HistSnapshot) MaxBucket() int {
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// Mean returns the average observed value, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the inclusive upper bound of the bucket holding the
// q-quantile observation (0 < q ≤ 1) — an upper estimate with log2
// resolution, which is what a tail-latency view needs.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= target {
			return UpperBound(i)
		}
	}
	return UpperBound(HistBuckets - 1)
}
