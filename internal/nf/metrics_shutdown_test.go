// Satellite coverage for the control-plane mounting points on the
// metrics endpoint: Handle (extra routes on the same mux) and Shutdown
// (graceful stop that waits for in-flight requests and releases the
// expvar source names, like Close).
package nf_test

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"vignat/internal/nf"
)

func TestMetricsHandleAndShutdown(t *testing.T) {
	snap := func() nf.Stats { return nf.Stats{Processed: 5} }
	m, err := nf.ServeMetrics("127.0.0.1:0", nf.MetricSource{Name: "shutdown-src", Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}

	// A mounted route serves alongside the built-ins.
	started := make(chan struct{})
	release := make(chan struct{})
	m.Handle("/control/v1/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/control/v1/slow" {
			close(started)
			<-release
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok")
	}))
	resp, err := http.Get("http://" + m.Addr() + "/control/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("mounted route: %d %q", resp.StatusCode, body)
	}

	// Shutdown must wait for the in-flight request, not kill it.
	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + m.Addr() + "/control/v1/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = io.ErrUnexpectedEOF
			}
		}
		slowDone <- err
	}()
	<-started
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- m.Shutdown(ctx)
	}()
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request was killed by Shutdown: %v", err)
	}

	// The listener is closed and the expvar source names are free
	// again — the same release Close performs.
	if _, err := http.Get("http://" + m.Addr() + "/debug/vars"); err == nil {
		t.Fatal("endpoint still serving after Shutdown")
	}
	m2, err := nf.ServeMetrics("127.0.0.1:0", nf.MetricSource{Name: "shutdown-src", Snapshot: snap})
	if err != nil {
		t.Fatalf("source name not released by Shutdown: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}
