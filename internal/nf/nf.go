// Package nf is the unified network-function layer: one interface every
// NF in the repository implements (NAT, firewall, discard, and their
// compositions) and one Pipeline engine that binds any of them to the
// dpdk substrate with RX/TX bursting and flow-hash sharding.
//
// Before this package each NF carried its own copy of the poll-loop
// harness (rx_burst → process → tx_burst, mbuf ownership bookkeeping,
// drop accounting). The paper's artifact is one NAT pinned to one core;
// the Vigor-style generalization the roadmap targets needs the opposite
// factoring: NFs supply only packet semantics, and a shared
// run-to-completion engine supplies I/O, batching, and scaling — the
// same split ndn-dpdk's forwarder makes between its per-NF logic and
// its input/fwd threads.
package nf

import (
	"vignat/internal/libvig"
	"vignat/internal/nf/telemetry"
)

// Verdict is the pipeline-level outcome for one packet. NFs in this
// repository are two-interface middleboxes, so "forward" always means
// "out the opposite interface"; NF-specific verdicts (the NAT's
// directional ones, say) collapse onto this pair at the engine boundary.
type Verdict uint8

// Verdicts.
const (
	// Drop discards the packet; the engine frees its mbuf.
	Drop Verdict = iota
	// Forward emits the (possibly rewritten) packet out the interface
	// opposite the one it arrived on.
	Forward
)

// String returns the verdict mnemonic.
func (v Verdict) String() string {
	switch v {
	case Drop:
		return "drop"
	case Forward:
		return "forward"
	default:
		return "verdict(?)"
	}
}

// Pkt is one unit of pipeline work: a frame and the side it arrived on.
// Frame aliases the owning mbuf's data room, so NFs that rewrite do so
// in place, exactly like the C NFs over rte_mbuf.
type Pkt struct {
	Frame        []byte
	FromInternal bool
}

// Stats are the engine-visible counters every NF exposes. NFs keep
// richer internal statistics (the NAT splits forwards by direction, for
// instance); these are the common denominators the pipeline aggregates.
// The FastPath counters are written by the engine, not the NF: they
// split Processed by how the verdict was reached (pre-classification
// cache hit vs the full slow path) and count cache displacements; they
// stay zero for NFs the engine runs without a flow cache.
type Stats struct {
	Processed uint64
	Forwarded uint64
	Dropped   uint64
	Expired   uint64

	FastPathHits      uint64
	FastPathMisses    uint64
	FastPathEvictions uint64
	// FastPathBypassed counts packets the engine deliberately sent
	// around the cache while a shard was in cold mode (churn-heavy
	// traffic where probing would cost more than it saves).
	FastPathBypassed uint64
}

// Add accumulates other into s (shard and chain aggregation).
func (s *Stats) Add(other Stats) {
	s.Processed += other.Processed
	s.Forwarded += other.Forwarded
	s.Dropped += other.Dropped
	s.Expired += other.Expired
	s.FastPathHits += other.FastPathHits
	s.FastPathMisses += other.FastPathMisses
	s.FastPathEvictions += other.FastPathEvictions
	s.FastPathBypassed += other.FastPathBypassed
}

// NF is a network function the pipeline can drive. Implementations live
// with their packet logic (internal/nat, internal/firewall,
// internal/discard); the engine knows nothing about what a verdict
// means beyond drop-or-forward.
//
// Implementations are single-threaded per instance: the pipeline
// guarantees that at most one goroutine is inside a given NF value at a
// time (sharded NFs get that guarantee per shard).
type NF interface {
	// Name identifies the NF in stats and logs.
	Name() string

	// Process runs one frame at the NF's current time, rewriting it in
	// place when the NF translates. fromInternal says which interface
	// the frame arrived on.
	Process(frame []byte, fromInternal bool) Verdict

	// ProcessBatch processes pkts[i] into verdicts[i] for every i. It
	// must be allocation-free on the steady state and must behave
	// per-packet like len(pkts) calls to Process, with two sanctioned
	// deviations: implementations may read their clock once for the
	// whole batch (the amortization DPDK NFs get from reading TSC once
	// per burst), and compositions may regroup the burst by direction
	// — internal-side packets before external-side ones, relative
	// order preserved within each group, matching the engine's RX
	// order. len(verdicts) must be at least len(pkts).
	ProcessBatch(pkts []Pkt, verdicts []Verdict)

	// Expire advances the NF's state expiry to now without processing a
	// packet, returning the number of entries freed. The pipeline calls
	// it on idle polls so state drains even when no traffic arrives —
	// per-packet NFs expire on their own during Process.
	Expire(now libvig.Time) int

	// NFStats snapshots the engine-visible counters.
	NFStats() Stats
}

// ExpiryModer is implemented by NFs that can run with their Fig. 6
// in-line (per-packet) expiry disabled, deferring all state expiry to
// explicit Expire calls — the engine's amortized once-per-poll mode
// (Config.AmortizedExpiry). SetPerPacketExpiry reports whether the NF
// — and, for compositions, every component — actually switched; the
// pipeline refuses amortized mode when it cannot guarantee the switch,
// since a half-switched chain would expire twice with different
// deadlines.
type ExpiryModer interface {
	SetPerPacketExpiry(on bool) bool
}

// ReasonStatser is implemented by NFs that declare a telemetry reason
// taxonomy: every packet outcome is tagged with a ReasonID from the
// declared set, and the per-reason totals ride the same single-writer
// counter discipline as the rest of NFStats. The nfkit adapter derives
// the implementation from Decl.Reasons; the engine's counted wrappers
// mirror the totals into padded per-shard cells so they are scrapeable
// race-free.
type ReasonStatser interface {
	// ReasonSet returns the NF's declared taxonomy, or nil when the
	// implementation carries none (derived adapters implement the
	// interface unconditionally; consumers must check).
	ReasonSet() *telemetry.ReasonSet
	// ReasonCounts returns the NF's live per-reason totals, indexed by
	// ReasonID. The slice is the NF's own single-writer storage: only
	// the owning worker may read it (snapshots go through the counted
	// wrapper's mirrored cells).
	ReasonCounts() []uint64
	// LastReason returns the reason tagged on the most recently
	// processed packet — the trace ring's best-effort label.
	LastReason() telemetry.ReasonID
}

// Sharder is implemented by NFs whose state is partitioned into
// independent shards (RSS-style). The pipeline steers each frame to the
// shard that owns its flow and may run shards on distinct workers; a
// flow must always map to the same shard in both directions, which is
// what makes the shards lock-free.
type Sharder interface {
	NF

	// Shards returns the number of state partitions.
	Shards() int

	// ShardOf returns the shard owning the frame's flow. It must be
	// consistent: every packet of a session (both directions) yields
	// the same shard. Unparseable frames may map anywhere (they will be
	// dropped regardless of owner). It must be allocation-free and safe
	// for concurrent use: the wire side calls it as the RSS function
	// while every run-to-completion worker re-steers its own bursts.
	ShardOf(frame []byte, fromInternal bool) int

	// Shard returns shard i as a standalone NF. Distinct shards share
	// no mutable state, so the pipeline may process them concurrently.
	Shard(i int) NF
}
