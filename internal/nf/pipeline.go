package nf

import (
	"errors"
	"fmt"
	"sync"

	"vignat/internal/dpdk"
	"vignat/internal/libvig"
)

// DefaultBurst is the RX/TX burst size, matching the C NFs' 32-packet
// DPDK bursts.
const DefaultBurst = 32

// Config parameterizes a Pipeline.
type Config struct {
	// Internal and External are the two dpdk ports the NF bridges.
	Internal, External *dpdk.Port
	// Burst is the RX/TX burst size (default DefaultBurst).
	Burst int
	// Workers is the number of processing workers (default 1). With
	// more than one worker each Poll fork-joins shard processing across
	// goroutines; shards share no state, so no locks are taken on the
	// packet path. Workers beyond the shard count are idle.
	Workers int
	// Clock, when set, lets idle polls advance NF expiry so state
	// drains without traffic.
	Clock libvig.Clock
}

// PipelineStats counts engine-level events.
type PipelineStats struct {
	Polls     uint64
	RxPackets uint64
	TxPackets uint64
	TxFreed   uint64 // forwarded but rejected by the TX queue
	Dropped   uint64 // NF verdict was Drop
}

// Pipeline is the shared run-to-completion engine: it pulls RX bursts
// from both ports, steers each frame to the shard owning its flow,
// runs batched NF processing (optionally across workers), and
// assembles TX bursts with libvig.Batcher — the rx_burst → steer →
// process → tx_burst loop every NF previously hand-rolled.
//
// Mbuf ownership is conserved: every mbuf received in a Poll is either
// handed to a TX queue or freed to its pool before Poll returns, the
// leak discipline Vigor's checker enforces.
type Pipeline struct {
	nf      NF
	sharder Sharder
	intPort *dpdk.Port
	extPort *dpdk.Port
	burst   int
	workers int
	clock   libvig.Clock

	// Preallocated per-poll scratch: the packet path allocates nothing.
	rxBufs     []*dpdk.Mbuf
	shardPkts  [][]Pkt
	shardBufs  [][]*dpdk.Mbuf
	shardVerd  [][]Verdict
	shardNFs   []NF
	toInternal *libvig.Batcher[*dpdk.Mbuf]
	toExternal *libvig.Batcher[*dpdk.Mbuf]

	stats PipelineStats
}

// singleShard adapts an unsharded NF to the Sharder interface: one
// shard owning everything.
type singleShard struct{ NF }

func (s singleShard) Shards() int              { return 1 }
func (s singleShard) ShardOf([]byte, bool) int { return 0 }
func (s singleShard) Shard(int) NF             { return s.NF }

// NewPipeline binds n to the ports in cfg.
func NewPipeline(n NF, cfg Config) (*Pipeline, error) {
	if n == nil {
		return nil, errors.New("nf: nil NF")
	}
	if cfg.Internal == nil || cfg.External == nil {
		return nil, errors.New("nf: pipeline needs both ports")
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = DefaultBurst
	}
	if burst < 0 {
		return nil, errors.New("nf: negative burst")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		return nil, errors.New("nf: negative worker count")
	}
	sharder, ok := n.(Sharder)
	if !ok {
		sharder = singleShard{n}
	}
	nShards := sharder.Shards()
	if nShards < 1 {
		return nil, fmt.Errorf("nf: %s reports %d shards", n.Name(), nShards)
	}
	p := &Pipeline{
		nf:      n,
		sharder: sharder,
		intPort: cfg.Internal,
		extPort: cfg.External,
		burst:   burst,
		workers: workers,
		clock:   cfg.Clock,
		rxBufs:  make([]*dpdk.Mbuf, burst),
	}
	// Worst case both ports' bursts land in one shard.
	perShard := 2 * burst
	p.shardPkts = make([][]Pkt, nShards)
	p.shardBufs = make([][]*dpdk.Mbuf, nShards)
	p.shardVerd = make([][]Verdict, nShards)
	p.shardNFs = make([]NF, nShards)
	for s := 0; s < nShards; s++ {
		p.shardPkts[s] = make([]Pkt, 0, perShard)
		p.shardBufs[s] = make([]*dpdk.Mbuf, 0, perShard)
		p.shardVerd[s] = make([]Verdict, perShard)
		p.shardNFs[s] = sharder.Shard(s)
	}
	var err error
	p.toInternal, err = libvig.NewBatcher[*dpdk.Mbuf](burst, p.txFlush(cfg.Internal))
	if err != nil {
		return nil, err
	}
	p.toExternal, err = libvig.NewBatcher[*dpdk.Mbuf](burst, p.txFlush(cfg.External))
	if err != nil {
		return nil, err
	}
	return p, nil
}

// txFlush builds the Batcher flush function for one output port: burst
// the batch out, free whatever the TX queue rejects (DPDK semantics —
// the mbuf must go back to its pool either way).
func (p *Pipeline) txFlush(port *dpdk.Port) func([]*dpdk.Mbuf) error {
	return func(bufs []*dpdk.Mbuf) error {
		sent := port.TxBurst(bufs)
		p.stats.TxPackets += uint64(sent)
		for _, m := range bufs[sent:] {
			p.stats.TxFreed++
			if err := m.Pool().Free(m); err != nil {
				return err
			}
		}
		return nil
	}
}

// NF returns the pipeline's network function.
func (p *Pipeline) NF() NF { return p.nf }

// Stats returns a snapshot of the engine counters.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// Poll runs one engine iteration: RX from both ports, steer, process,
// TX. It returns the number of packets pulled from the RX queues. On an
// idle poll (zero packets) it advances NF expiry if a clock was
// configured.
func (p *Pipeline) Poll() (int, error) {
	p.stats.Polls++
	for s := range p.shardPkts {
		p.shardPkts[s] = p.shardPkts[s][:0]
		p.shardBufs[s] = p.shardBufs[s][:0]
	}
	n := p.rxSteer(p.intPort, true)
	n += p.rxSteer(p.extPort, false)
	if n == 0 {
		if p.clock != nil {
			p.nf.Expire(p.clock.Now())
		}
		return 0, nil
	}
	p.stats.RxPackets += uint64(n)

	if p.workers > 1 && len(p.shardNFs) > 1 {
		p.processParallel()
	} else {
		for s, pkts := range p.shardPkts {
			if len(pkts) > 0 {
				p.shardNFs[s].ProcessBatch(pkts, p.shardVerd[s])
			}
		}
	}

	if err := p.emit(); err != nil {
		return n, err
	}
	return n, nil
}

// rxSteer pulls one burst from port and distributes the mbufs to the
// shards owning their flows.
func (p *Pipeline) rxSteer(port *dpdk.Port, fromInternal bool) int {
	cnt := port.RxBurst(p.rxBufs)
	for i := 0; i < cnt; i++ {
		m := p.rxBufs[i]
		s := p.sharder.ShardOf(m.Data, fromInternal)
		if s < 0 || s >= len(p.shardPkts) {
			s = 0
		}
		p.shardPkts[s] = append(p.shardPkts[s], Pkt{Frame: m.Data, FromInternal: fromInternal})
		p.shardBufs[s] = append(p.shardBufs[s], m)
	}
	return cnt
}

// processParallel fork-joins shard batches across the configured
// workers. Worker w owns shards w, w+workers, w+2·workers, …; shard
// state and verdict slices are disjoint, so the workers synchronize
// only at the join.
func (p *Pipeline) processParallel() {
	var wg sync.WaitGroup
	workers := p.workers
	if workers > len(p.shardNFs) {
		workers = len(p.shardNFs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < len(p.shardNFs); s += workers {
				if len(p.shardPkts[s]) > 0 {
					p.shardNFs[s].ProcessBatch(p.shardPkts[s], p.shardVerd[s])
				}
			}
		}(w)
	}
	wg.Wait()
}

// emit walks the verdicts, freeing drops and batching forwards onto the
// opposite port, then flushes both TX batchers.
func (p *Pipeline) emit() error {
	for s := range p.shardPkts {
		pkts := p.shardPkts[s]
		bufs := p.shardBufs[s]
		verd := p.shardVerd[s]
		for i := range pkts {
			m := bufs[i]
			if verd[i] != Forward {
				p.stats.Dropped++
				if err := m.Pool().Free(m); err != nil {
					return err
				}
				continue
			}
			var b *libvig.Batcher[*dpdk.Mbuf]
			if pkts[i].FromInternal {
				b = p.toExternal
			} else {
				b = p.toInternal
			}
			if err := b.Push(m); err != nil {
				return err
			}
		}
	}
	if err := p.toInternal.Flush(); err != nil {
		return err
	}
	return p.toExternal.Flush()
}
