package nf

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vignat/internal/dpdk"
	"vignat/internal/fastpath"
	"vignat/internal/libvig"
	"vignat/internal/nf/telemetry"
)

// DefaultBurst is the RX/TX burst size, matching the C NFs' 32-packet
// DPDK bursts.
const DefaultBurst = 32

// DefaultFastPathEntries is the per-worker flow-cache size used when
// the fast path is enabled without an explicit size.
const DefaultFastPathEntries = 8192

// FastPathDisabled forces the flow cache off regardless of the
// environment (Config.FastPath).
const FastPathDisabled = -1

// FastPathEnv is the environment variable consulted when
// Config.FastPath is zero: unset, empty, "0", "off", or "false" leave
// the cache disabled; "1", "on", or "true" enable it at
// DefaultFastPathEntries; a positive integer enables it at that
// per-worker size. CI uses it to force the whole conformance suite
// through the fast path.
const FastPathEnv = "VIGNAT_FASTPATH"

// TelemetryDisabled forces telemetry off regardless of the environment
// (Config.Telemetry).
const TelemetryDisabled = -1

// TelemetryEnv is the environment variable consulted when
// Config.Telemetry is zero: unset, empty, "0", "off", or "false" leave
// telemetry disabled; "1", "on", or "true" enable it.
const TelemetryEnv = "VIGNAT_TELEMETRY"

// DefaultTraceSample is the trace ring's sampling period when
// telemetry is enabled without an explicit Config.TraceSample: one
// record per 1024 packets.
const DefaultTraceSample = 1024

// Config parameterizes a Pipeline.
type Config struct {
	// Internal and External are the two dpdk ports the NF bridges.
	// Both must expose at least Workers RX/TX queue pairs; the
	// pipeline installs the NF's steering function as each port's RSS
	// function, so the wire places every frame on the queue of the
	// worker owning its flow.
	Internal, External *dpdk.Port
	// Burst is the RX/TX burst size (default DefaultBurst).
	Burst int
	// Workers is the number of run-to-completion workers (default 1).
	// Worker w owns queue pair w on both ports and shards
	// {s : s mod Workers == w} end-to-end: rx_burst → steer →
	// ProcessBatch → tx batching, all on per-worker state, so no lock
	// or shared cache line sits on the packet path. Each worker may be
	// driven from its own goroutine via PollWorker; workers beyond the
	// shard count receive no traffic.
	Workers int
	// Clock, when set, lets idle polls advance NF expiry so state
	// drains without traffic. Workers expire only the shards they own,
	// preserving the one-goroutine-per-shard guarantee.
	Clock libvig.Clock
	// AmortizedExpiry moves expiry from inside every packet (Fig. 6's
	// expire-then-process) to once per poll at the engine level: each
	// worker expires the shards it owns at the top of every poll, and
	// the NF's own per-packet expiry is switched off (the NF must
	// implement ExpiryModer and accept the switch). Observable behavior
	// is identical whenever the clock does not advance mid-poll — the
	// engine's deadline now−Texp equals the one every packet of the
	// poll would have used — and with a live clock expiry lags by at
	// most one poll, the standard Texp slack. Requires Clock.
	AmortizedExpiry bool
	// FastPath sizes the per-worker established-flow cache (entries
	// per worker): packets of flows the NF has already resolved skip
	// parse dispatch, ProcessPacket, and the libVig lookups, taking a
	// pre-resolved verdict plus rewrite template instead, with outputs
	// bit-identical to the slow path (hits replay the same state
	// mutations in the same order). A positive value enables the cache
	// at that size and requires Clock — hits rejuvenate state on the
	// NF's timeline, exactly like AmortizedExpiry's engine-driven
	// sweeps. Zero defers to the FastPathEnv environment variable
	// (still requiring Clock; without one the cache silently stays
	// off). FastPathDisabled forces it off. NFs that do not implement
	// FastPather (or decline it) are unaffected either way.
	FastPath int
	// Telemetry switches the per-worker histograms and the sampled
	// trace ring on (positive), off (TelemetryDisabled), or defers to
	// the TelemetryEnv environment variable (zero). Disabled telemetry
	// costs the hot path one nil pointer check per burst; enabled, it
	// costs a few clock reads on one poll in TimingStride (≤3%,
	// BENCH_telemetry).
	Telemetry int
	// TraceSample is the trace ring's sampling period when telemetry is
	// enabled: one record per TraceSample packets seen on timed polls
	// (default DefaultTraceSample; negative disables tracing but keeps
	// the histograms).
	TraceSample int
	// TimingStride is the poll-sampling period of the timing
	// histograms when telemetry is enabled: one poll in TimingStride
	// is fully timed, the rest pay a single counter increment (default
	// telemetry.TimingStride; must be a power of two). Lock-step
	// harnesses that assert on histogram counts set 1 to time every
	// poll.
	TimingStride int
	// IdleWait, when positive, parks an idle PollWorker (zero packets
	// after its expiry sweep) for up to that long waiting for RX
	// traffic, half the budget on each port. On socket transports the
	// wait is a select(2) on the queue's descriptor — wire mode burns
	// no CPU between packets; on the in-memory transport it is a plain
	// sleep, so lock-step harnesses leave it zero and busy-poll like
	// DPDK.
	IdleWait time.Duration
}

// resolveFastPath turns Config.FastPath plus the environment into a
// per-worker entry count (0 = disabled).
func resolveFastPath(cfg int, haveClock bool) (int, error) {
	switch {
	case cfg < 0:
		return 0, nil
	case cfg > 0:
		if !haveClock {
			return 0, errors.New("nf: the fast path needs a clock")
		}
		return cfg, nil
	}
	switch v := os.Getenv(FastPathEnv); v {
	case "", "0", "off", "false":
		return 0, nil
	case "1", "on", "true":
		if !haveClock {
			return 0, nil // clockless rigs cannot rejuvenate; stay off
		}
		return DefaultFastPathEntries, nil
	default:
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("nf: bad %s value %q", FastPathEnv, v)
		}
		if !haveClock {
			return 0, nil
		}
		return n, nil
	}
}

// resolveTelemetry turns Config.Telemetry plus the environment into an
// on/off decision, mirroring resolveFastPath's contract (zero defers
// to TelemetryEnv, a bad value is an error rather than a silent off).
func resolveTelemetry(cfg int) (bool, error) {
	switch {
	case cfg < 0:
		return false, nil
	case cfg > 0:
		return true, nil
	}
	switch v := os.Getenv(TelemetryEnv); v {
	case "", "0", "off", "false":
		return false, nil
	case "1", "on", "true":
		return true, nil
	default:
		return false, fmt.Errorf("nf: bad %s value %q", TelemetryEnv, v)
	}
}

// PipelineStats counts engine-level events.
type PipelineStats struct {
	Polls     uint64
	RxPackets uint64
	TxPackets uint64
	TxFreed   uint64 // forwarded but rejected by the TX queue
	Dropped   uint64 // NF verdict was Drop

	FastPathHits      uint64 // verdict taken from the flow cache
	FastPathMisses    uint64 // slow path taken (includes bypassed)
	FastPathBypassed  uint64 // slow path taken unexamined (cold-mode sampling)
	FastPathEvictions uint64 // cache entries displaced or reclaimed dead
}

// add accumulates other into s (per-worker → engine aggregation).
func (s *PipelineStats) add(other PipelineStats) {
	s.Polls += other.Polls
	s.RxPackets += other.RxPackets
	s.TxPackets += other.TxPackets
	s.TxFreed += other.TxFreed
	s.Dropped += other.Dropped
	s.FastPathHits += other.FastPathHits
	s.FastPathMisses += other.FastPathMisses
	s.FastPathBypassed += other.FastPathBypassed
	s.FastPathEvictions += other.FastPathEvictions
}

// Pipeline is the shared run-to-completion engine: each worker pulls RX
// bursts from its own queue pair on both ports, steers each frame to
// the shard owning its flow, runs batched NF processing, and assembles
// TX bursts with libvig.Batcher — the rx_burst → steer → process →
// tx_burst loop every NF previously hand-rolled, replicated per core
// the way a multi-queue DPDK deployment replicates its lcore loop.
//
// Mbuf ownership is conserved: every mbuf received in a poll is either
// handed to a TX queue or freed to its pool before the poll returns —
// including on error paths — the leak discipline Vigor's checker
// enforces.
type Pipeline struct {
	nf        NF
	sharder   Sharder
	intPort   *dpdk.Port
	extPort   *dpdk.Port
	burst     int
	clock     libvig.Clock
	amortized bool
	shardNFs  []NF
	// fastNFs[s] is shard s's NF as a FastPather, nil when the shard
	// does not participate in the flow cache (read-only after
	// construction). fastHits[s] is the same shard's hit handler,
	// pre-bound at construction so a cache hit costs one indirect call.
	fastNFs  []FastPather
	fastHits []FastHitFunc
	// fastSink receives per-shard flow-cache counters, when the NF's
	// stats surface accepts them.
	fastSink FastPathCounter
	// fastEntries is the per-worker cache size; 0 disables the cache.
	fastEntries int
	// tel is the engine telemetry (nil when disabled — the hot path's
	// only per-worker cost then is a nil check). It is an atomic
	// pointer because a live worker-count change rebuilds the
	// per-worker blocks while scrapers keep reading.
	tel atomic.Pointer[telemetry.PipelineTel]
	// telSample is the resolved trace sampling period, retained so a
	// worker-count change rebuilds telemetry with the same config.
	telSample uint64
	// telEpoch anchors telemetry timestamps: boundaries are captured as
	// time.Since(telEpoch), a monotonic-only read — roughly half the
	// cost of time.Now(), which also reads the wall clock the
	// histograms never use.
	telEpoch time.Time
	// telMask samples the timing instrumentation: a poll is fully
	// timed when telTick&telMask == 0 (stride from Config.TimingStride,
	// default telemetry.TimingStride).
	telMask uint64
	// idleWait is the idle-poll parking budget (0 = busy-poll).
	idleWait time.Duration
	// ownerLocal[s] is the owning worker's local slot for shard s
	// (read-only between worker changes, shared by all workers).
	ownerLocal []int
	workers    []*worker

	// Control plane (control.go): ctlMu serializes management verbs,
	// pause+inPoll implement the worker quiesce handshake, base folds
	// retired workers' counters across worker-count changes, and drv
	// holds the managed drive goroutines while Start()ed.
	ctlMu sync.Mutex
	pause atomic.Bool
	base  PipelineStats
	drv   *pipeDrivers
}

// worker is one run-to-completion execution context: a queue pair
// index, the shards it owns, and all the scratch the packet path
// needs. Nothing in here is ever touched by another goroutine.
type worker struct {
	p  *Pipeline
	id int

	shards []int // global shard ids owned: {s : s mod W == id}

	// Preallocated per-poll scratch, indexed by local shard slot: the
	// packet path allocates nothing.
	rxBufs     []*dpdk.Mbuf
	pkts       [][]Pkt
	bufs       [][]*dpdk.Mbuf
	verd       [][]Verdict
	toInternal *libvig.Batcher[*dpdk.Mbuf]
	toExternal *libvig.Batcher[*dpdk.Mbuf]

	// cache is the worker's private flow cache (nil when disabled);
	// meta holds the per-poll pre-processing extraction results,
	// parallel to pkts. offer queues the burst positions of misses the
	// doorkeeper admitted — the only packets the post-run offer pass
	// revisits (reset per shard burst).
	cache *fastpath.Table
	meta  [][]fastpath.Meta
	offer []int32
	// Cold-mode (adaptive bypass) state: coldStreak counts consecutive
	// all-miss bursts; once it reaches coldAfter the worker goes cold
	// and probes only one in coldSample packets (coldTick phases the
	// sampling) until a sampled hit or install re-warms it.
	cold       bool
	coldStreak int
	coldTick   uint64

	// tel is this worker's private telemetry block (nil when disabled);
	// sample is the trace ring's period (copied here so the packet
	// path never reads the pipeline's swappable telemetry pointer);
	// traceTick accumulates packets toward the next trace sample and
	// telTick counts polls toward the next fully-timed one (see
	// telemetry.TimingStride).
	tel       *telemetry.WorkerTel
	sample    uint64
	traceTick uint64
	telTick   uint64

	// inPoll is the worker's half of the control-plane quiesce
	// handshake: true exactly while a PollWorker call is inside the
	// packet path (see Pipeline.Apply in control.go).
	inPoll atomic.Bool

	stats PipelineStats
}

// singleShard adapts an unsharded NF to the Sharder interface: one
// shard owning everything.
type singleShard struct{ NF }

func (s singleShard) Shards() int              { return 1 }
func (s singleShard) ShardOf([]byte, bool) int { return 0 }
func (s singleShard) Shard(int) NF             { return s.NF }

// NewPipeline binds n to the ports in cfg and installs the NF's
// steering function as both ports' RSS function.
func NewPipeline(n NF, cfg Config) (*Pipeline, error) {
	if n == nil {
		return nil, errors.New("nf: nil NF")
	}
	if cfg.Internal == nil || cfg.External == nil {
		return nil, errors.New("nf: pipeline needs both ports")
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = DefaultBurst
	}
	if burst < 0 {
		return nil, errors.New("nf: negative burst")
	}
	nWorkers := cfg.Workers
	if nWorkers == 0 {
		nWorkers = 1
	}
	if nWorkers < 0 {
		return nil, errors.New("nf: negative worker count")
	}
	if cfg.Internal.Queues() < nWorkers || cfg.External.Queues() < nWorkers {
		return nil, fmt.Errorf("nf: %d workers need %d queue pairs per port (internal has %d, external %d)",
			nWorkers, nWorkers, cfg.Internal.Queues(), cfg.External.Queues())
	}
	sharder, ok := n.(Sharder)
	if !ok {
		sharder = singleShard{n}
	}
	if ns := sharder.Shards(); ns < 1 {
		return nil, fmt.Errorf("nf: %s reports %d shards", n.Name(), ns)
	}
	if cfg.AmortizedExpiry {
		if cfg.Clock == nil {
			return nil, errors.New("nf: amortized expiry needs a clock")
		}
		em, ok := n.(ExpiryModer)
		if !ok {
			return nil, fmt.Errorf("nf: %s cannot switch off per-packet expiry", n.Name())
		}
		if !em.SetPerPacketExpiry(false) {
			// A composition may have switched some components before one
			// refused; restore them so the NF is never left half-switched
			// (a later per-packet-mode pipeline over the same NF would
			// otherwise silently stop expiring under sustained traffic).
			em.SetPerPacketExpiry(true)
			return nil, fmt.Errorf("nf: %s cannot switch off per-packet expiry", n.Name())
		}
	}
	fastEntries, err := resolveFastPath(cfg.FastPath, cfg.Clock != nil)
	if err != nil {
		return nil, err
	}
	telOn, err := resolveTelemetry(cfg.Telemetry)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		nf:          n,
		sharder:     sharder,
		intPort:     cfg.Internal,
		extPort:     cfg.External,
		burst:       burst,
		clock:       cfg.Clock,
		amortized:   cfg.AmortizedExpiry,
		idleWait:    cfg.IdleWait,
		fastEntries: fastEntries,
	}
	p.fastSink, _ = n.(FastPathCounter)
	if telOn {
		sample := cfg.TraceSample
		switch {
		case sample == 0:
			sample = DefaultTraceSample
		case sample < 0:
			sample = 0 // histograms only, no trace ring
		}
		p.telSample = uint64(sample)
		p.tel.Store(telemetry.NewPipelineTel(nWorkers, uint64(sample)))
		p.telEpoch = time.Now()
		stride := cfg.TimingStride
		if stride == 0 {
			stride = telemetry.TimingStride
		}
		if stride < 1 || stride&(stride-1) != 0 {
			return nil, fmt.Errorf("nf: timing stride %d is not a power of two", stride)
		}
		p.telMask = uint64(stride - 1)
	}
	if err := p.rebuild(nWorkers); err != nil {
		return nil, err
	}
	p.installRSS()
	return p, nil
}

// rebuild derives the per-shard tables and constructs nWorkers fresh
// workers from the sharder's current shard count — the shared body of
// NewPipeline and the live worker-count change (control.go). The
// caller guarantees no worker is polling.
func (p *Pipeline) rebuild(nWorkers int) error {
	nShards := p.sharder.Shards()
	if nShards < 1 {
		return fmt.Errorf("nf: %s reports %d shards", p.nf.Name(), nShards)
	}
	p.shardNFs = make([]NF, nShards)
	p.fastNFs = make([]FastPather, nShards)
	p.fastHits = make([]FastHitFunc, nShards)
	p.ownerLocal = make([]int, nShards)
	p.workers = make([]*worker, nWorkers)
	fastEntries := p.fastEntries
	anyFast := false
	for s := 0; s < nShards; s++ {
		p.shardNFs[s] = p.sharder.Shard(s)
		p.ownerLocal[s] = s / nWorkers // local slot within the owning worker
		if fastEntries > 0 {
			if fp, ok := p.shardNFs[s].(FastPather); ok && fp.FastPathEnabled() {
				p.fastNFs[s] = fp
				if fh, ok := p.shardNFs[s].(FastHitFuncer); ok {
					p.fastHits[s] = fh.FastHitFunc()
				}
				if p.fastHits[s] == nil {
					p.fastHits[s] = fp.FastHit
				}
				anyFast = true
			}
		}
	}
	if !anyFast {
		fastEntries = 0 // no participating shard: no cache, no extraction cost
	}
	p.fastEntries = fastEntries
	burst := p.burst
	tel := p.tel.Load()
	for w := 0; w < nWorkers; w++ {
		wk := &worker{
			p:      p,
			id:     w,
			rxBufs: make([]*dpdk.Mbuf, burst),
		}
		if tel != nil {
			wk.tel = tel.Worker(w)
			wk.sample = tel.Sample
		}
		for s := w; s < nShards; s += nWorkers {
			wk.shards = append(wk.shards, s)
		}
		// Worst case both ports' bursts land in one shard.
		perShard := 2 * burst
		wk.pkts = make([][]Pkt, len(wk.shards))
		wk.bufs = make([][]*dpdk.Mbuf, len(wk.shards))
		wk.verd = make([][]Verdict, len(wk.shards))
		for li := range wk.shards {
			wk.pkts[li] = make([]Pkt, 0, perShard)
			wk.bufs[li] = make([]*dpdk.Mbuf, 0, perShard)
			wk.verd[li] = make([]Verdict, perShard)
		}
		if fastEntries > 0 {
			wk.cache = fastpath.NewTable(fastEntries)
			wk.meta = make([][]fastpath.Meta, len(wk.shards))
			for li := range wk.shards {
				wk.meta[li] = make([]fastpath.Meta, perShard)
			}
			wk.offer = make([]int32, 0, perShard)
		}
		var err error
		wk.toInternal, err = libvig.NewBatcher[*dpdk.Mbuf](burst, wk.txFlush(p.intPort, w))
		if err != nil {
			return err
		}
		wk.toExternal, err = libvig.NewBatcher[*dpdk.Mbuf](burst, wk.txFlush(p.extPort, w))
		if err != nil {
			return err
		}
		p.workers[w] = wk
	}
	return nil
}

// installRSS (re)programs both ports' steering: a frame's queue is its
// owning worker's index, so worker w's queue pair carries exactly its
// shards' traffic. Counts are captured by value — an RSS function
// installed before a worker-count change stays internally consistent
// until the swap replaces it, exactly like a NIC indirection table.
func (p *Pipeline) installRSS() {
	sharder := p.sharder
	ns, nw := len(p.shardNFs), len(p.workers)
	clamp := func(s int) int {
		if s < 0 || s >= ns {
			return 0
		}
		return s
	}
	p.intPort.SetRSS(func(frame []byte) int {
		return clamp(sharder.ShardOf(frame, true)) % nw
	})
	p.extPort.SetRSS(func(frame []byte) int {
		return clamp(sharder.ShardOf(frame, false)) % nw
	})
}

// clampShard maps out-of-range steering results onto shard 0 (the
// frame will be dropped by whichever shard sees it; the clamp only
// keeps misbehaving steering functions memory-safe).
func (p *Pipeline) clampShard(s int) int {
	if s < 0 || s >= len(p.shardNFs) {
		return 0
	}
	return s
}

// txFlush builds the Batcher flush function for worker w's queue on
// one output port: burst the batch out, free whatever the TX queue
// rejects (DPDK semantics — the mbuf must go back to its pool either
// way). A failed free does not abandon the rest of the batch: every
// still-owned mbuf is freed before the first error is reported, so
// ownership is conserved even on the error path.
func (wk *worker) txFlush(port *dpdk.Port, q int) func([]*dpdk.Mbuf) error {
	return func(bufs []*dpdk.Mbuf) error {
		if wk.tel != nil && len(bufs) > 0 {
			wk.tel.TxDrain.Observe(uint64(len(bufs)))
		}
		sent := port.TxBurstQueue(q, bufs)
		wk.stats.TxPackets += uint64(sent)
		var firstErr error
		for _, m := range bufs[sent:] {
			wk.stats.TxFreed++
			if err := m.Pool().Free(m); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
}

// NF returns the pipeline's network function.
func (p *Pipeline) NF() NF { return p.nf }

// Workers returns the number of run-to-completion workers.
func (p *Pipeline) Workers() int { return len(p.workers) }

// FastPathEntries returns the per-worker flow-cache size after
// resolution (0 when the cache is disabled — explicitly, by
// environment, or because no shard participates).
func (p *Pipeline) FastPathEntries() int { return p.fastEntries }

// Telemetry returns the engine's telemetry block, nil when disabled.
// Snapshots of it are safe concurrently with running workers. A live
// worker-count change replaces the block (the per-worker layout
// changes with it); long-lived scrapers should call Telemetry per
// scrape rather than cache the pointer.
func (p *Pipeline) Telemetry() *telemetry.PipelineTel { return p.tel.Load() }

// Stats returns a snapshot of the engine counters: the live workers'
// aggregated with the base retired by control-plane worker changes.
// It must not be called concurrently with active PollWorker calls
// (poll from the same goroutines, call after a join, or read it
// inside Apply — the control plane's status path does).
func (p *Pipeline) Stats() PipelineStats {
	s := p.base
	for _, wk := range p.workers {
		s.add(wk.stats)
	}
	return s
}

// WorkerStats returns worker w's own counters.
func (p *Pipeline) WorkerStats(w int) PipelineStats { return p.workers[w].stats }

// Poll runs one engine iteration on every worker in turn, returning
// the total number of packets pulled from the RX queues. It is the
// lock-step single-goroutine harness (examples, oracle checks); a
// parallel deployment gives each worker its own goroutine calling
// PollWorker. All workers poll even when one fails — conservation
// first — and the first error is returned.
func (p *Pipeline) Poll() (int, error) {
	total := 0
	var firstErr error
	for w := range p.workers {
		n, err := p.PollWorker(w)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// PollWorker runs one run-to-completion iteration of worker w: RX a
// burst from its queue on each port, steer to its shards, process, TX
// through its own batchers. It returns the number of packets pulled
// from the RX queues. On an idle poll (zero packets) it advances
// expiry on the worker's own shards if a clock was configured.
//
// Distinct workers may be polled from distinct goroutines
// concurrently; a single worker must not.
func (p *Pipeline) PollWorker(w int) (int, error) {
	wk := p.workers[w]
	// Control-plane handshake (Dekker-style, both sides sequentially
	// consistent): announce the poll, then re-check the pause flag. If
	// a management verb is applying, step back out and park — Apply
	// waits until every worker's announcement is clear, so the verb
	// never observes a worker mid-poll, and the atomics give the verb's
	// mutations a happens-before edge to the next poll.
	for {
		wk.inPoll.Store(true)
		if !p.pause.Load() {
			break
		}
		wk.inPoll.Store(false)
		p.awaitResume()
	}
	defer wk.inPoll.Store(false)
	wk.stats.Polls++
	// Telemetry times the whole non-empty poll (RX, steer, process,
	// emit); idle polls are not observed, so the histogram reflects
	// work, not parking. Boundaries are monotonic-only reads against
	// the pipeline's epoch (see telEpoch), and only one poll in
	// telemetry.TimingStride is timed at all — the others pay one
	// counter increment.
	var pollStart time.Duration
	timed := false
	if wk.tel != nil {
		wk.telTick++
		timed = wk.telTick&p.telMask == 0
		if timed {
			pollStart = time.Since(p.telEpoch)
		}
	}
	for li := range wk.pkts {
		wk.pkts[li] = wk.pkts[li][:0]
		wk.bufs[li] = wk.bufs[li][:0]
	}
	if p.amortized && len(wk.shards) > 0 {
		// Amortized mode: one expiry sweep over the worker's shards per
		// poll, in place of the sweep every packet would have run.
		now := p.clock.Now()
		for _, s := range wk.shards {
			p.shardNFs[s].Expire(now)
		}
	}
	n := wk.rxSteer(p.intPort, true)
	n += wk.rxSteer(p.extPort, false)
	if n == 0 {
		if !p.amortized && p.clock != nil && len(wk.shards) > 0 {
			now := p.clock.Now()
			for _, s := range wk.shards {
				p.shardNFs[s].Expire(now)
			}
		}
		if p.idleWait > 0 {
			// Park until traffic plausibly arrived on either port: wire
			// mode's alternative to the DPDK busy-poll.
			p.intPort.WaitRxQueue(w, p.idleWait/2)
			p.extPort.WaitRxQueue(w, p.idleWait/2)
		}
		return 0, nil
	}
	wk.stats.RxPackets += uint64(n)

	var now libvig.Time
	if wk.cache != nil {
		now = p.clock.Now()
	}
	tel := wk.tel
	for li, s := range wk.shards {
		np := len(wk.pkts[li])
		if np == 0 {
			continue
		}
		// On a timed poll, telemetry times the whole shard burst with two
		// clock reads and attributes the amortized per-packet cost to the
		// fast-path histogram when the cache resolved every packet, the
		// slow-path one otherwise (mixed bursts count as slow: the slow
		// fragments dominate their wall time).
		var hitsBefore uint64
		var burstStart time.Duration
		if timed {
			hitsBefore = wk.stats.FastPathHits
			burstStart = time.Since(p.telEpoch)
		}
		if wk.cache != nil && p.fastNFs[s] != nil {
			wk.processShardFast(li, s, now)
		} else {
			p.shardNFs[s].ProcessBatch(wk.pkts[li], wk.verd[li])
		}
		if timed {
			perPkt := uint64(time.Since(p.telEpoch)-burstStart) / uint64(np)
			pureHit := wk.stats.FastPathHits-hitsBefore == uint64(np)
			if pureHit {
				tel.FastPktNs.ObserveN(perPkt, uint64(np))
			} else {
				tel.SlowPktNs.ObserveN(perPkt, uint64(np))
			}
			wk.maybeTrace(li, s, np, perPkt, pureHit, now)
		}
	}
	err := wk.emit()
	if timed {
		tel.PollNs.Observe(uint64(time.Since(p.telEpoch) - pollStart))
	}
	return n, err
}

// maybeTrace leaves one sampled trace record per Sample packets seen
// on timed polls (so the effective period is Sample×TimingStride
// processed packets): the final packet of the burst that crossed the
// threshold,
// with the burst's amortized per-packet cost and best-effort reason
// and chain-element labels. Called only with telemetry enabled.
func (wk *worker) maybeTrace(li, s, np int, perPkt uint64, pureHit bool, now libvig.Time) {
	sample := wk.sample
	if sample == 0 {
		return
	}
	wk.traceTick += uint64(np)
	if wk.traceTick < sample {
		return
	}
	wk.traceTick %= sample
	i := np - 1
	pkt := wk.pkts[li][i]
	rec := telemetry.Record{
		Now:          int64(now),
		Worker:       wk.id,
		FromInternal: pkt.FromInternal,
		Forwarded:    wk.verd[li][i] == Forward,
		Elem:         -1,
		PktNs:        perPkt,
		FastPath:     pureHit,
	}
	if m := fastpath.Extract(pkt.Frame); m.OK {
		id := m.FlowID()
		rec.Src, rec.Dst = id.SrcIP.String(), id.DstIP.String()
		rec.SrcPort, rec.DstPort = id.SrcPort, id.DstPort
		rec.Proto = uint8(id.Proto)
	}
	snf := wk.p.shardNFs[s]
	if lr, ok := snf.(interface{ LastReasonName() string }); ok {
		rec.Reason = lr.LastReasonName()
	}
	if !rec.Forwarded {
		if de, ok := snf.(interface{ LastDropElem() int }); ok {
			rec.Elem = de.LastDropElem()
		}
	}
	wk.tel.Trace.Push(rec)
}

// rxSteer pulls one burst from the worker's queue on port and
// distributes the mbufs to the worker's shards. Frames whose flow the
// worker does not own (possible only when the wire bypasses RSS) are
// processed on the worker's first shard rather than touching another
// worker's state: safety never depends on correct steering, only flow
// affinity does.
func (wk *worker) rxSteer(port *dpdk.Port, fromInternal bool) int {
	p := wk.p
	cnt := port.RxBurstQueue(wk.id, wk.rxBufs)
	if wk.tel != nil && cnt > 0 {
		wk.tel.BurstOccupancy.Observe(uint64(cnt))
	}
	for i := 0; i < cnt; i++ {
		m := wk.rxBufs[i]
		if len(wk.shards) == 0 {
			// A shardless worker can process nothing; conserve the mbuf.
			wk.stats.Dropped++
			_ = m.Pool().Free(m)
			continue
		}
		li := 0
		if len(wk.shards) > 1 {
			// With one owned shard every frame lands in slot 0; only
			// multi-shard workers pay the steering parse again.
			s := p.clampShard(p.sharder.ShardOf(m.Data, fromInternal))
			if s%len(p.workers) == wk.id {
				li = p.ownerLocal[s]
			}
		}
		wk.pkts[li] = append(wk.pkts[li], Pkt{Frame: m.Data, FromInternal: fromInternal})
		wk.bufs[li] = append(wk.bufs[li], m)
	}
	return cnt
}

// emit walks the verdicts, freeing drops and batching forwards onto
// the opposite port's queue for this worker, then flushes both TX
// batchers. Errors do not abort the walk: every mbuf of the poll is
// still freed or handed to a TX queue (a Push error means the batch
// already flushed, and txFlush conserves its whole batch), and the
// first error is reported after conservation is complete.
func (wk *worker) emit() error {
	var firstErr error
	for li := range wk.shards {
		pkts := wk.pkts[li]
		bufs := wk.bufs[li]
		verd := wk.verd[li]
		for i := range pkts {
			m := bufs[i]
			if verd[i] != Forward {
				wk.stats.Dropped++
				if err := m.Pool().Free(m); err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			}
			var b *libvig.Batcher[*dpdk.Mbuf]
			if pkts[i].FromInternal {
				b = wk.toExternal
			} else {
				b = wk.toInternal
			}
			if err := b.Push(m); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := wk.toInternal.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := wk.toExternal.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
