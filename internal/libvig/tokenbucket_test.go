package libvig

import (
	"testing"
	"time"
)

func newTB(t *testing.T, capacity int, rate, burst int64) *TokenBucket {
	t.Helper()
	tb, err := NewTokenBucket(capacity, rate, burst)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTokenBucketConstructionChecks(t *testing.T) {
	if _, err := NewTokenBucket(0, 1, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewTokenBucket(1, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(1, MaxRateBytesPerSec+1, 1); err == nil {
		t.Fatal("over-limit rate accepted (fill-time division would overflow)")
	}
	if _, err := NewTokenBucket(1, 1, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
	if _, err := NewTokenBucket(1, 1, MaxBurstBytes+1); err == nil {
		t.Fatal("over-limit burst accepted (scaled level would overflow)")
	}
	if _, err := NewTokenBucket(1, 1, MaxBurstBytes); err != nil {
		t.Fatalf("limit burst rejected: %v", err)
	}
}

func TestTokenBucketFillAndDrain(t *testing.T) {
	tb := newTB(t, 4, 1000, 100) // 1000 B/s, 100 B burst
	if err := tb.Fill(0, 0); err != nil {
		t.Fatal(err)
	}
	// A fresh bucket holds exactly its burst.
	if lvl, _ := tb.Level(0, 0); lvl != 100 {
		t.Fatalf("fresh level %d, want 100", lvl)
	}
	// Draw it dry in two charges; the third must fail and consume nothing.
	if !tb.Charge(0, 60, 0) || !tb.Charge(0, 40, 0) {
		t.Fatal("conforming charges rejected")
	}
	if tb.Charge(0, 1, 0) {
		t.Fatal("charged an empty bucket")
	}
	if lvl, _ := tb.Level(0, 0); lvl != 0 {
		t.Fatalf("level %d after drain, want 0", lvl)
	}
	// A rejected charge must not consume: level is a function of time.
	lvlBefore, _ := tb.LevelUnits(0)
	tb.Charge(0, 50, 0)
	if lvlAfter, _ := tb.LevelUnits(0); lvlAfter != lvlBefore {
		t.Fatal("failed charge consumed tokens")
	}
}

func TestTokenBucketLazyRefillExact(t *testing.T) {
	tb := newTB(t, 1, 1000, 1000) // 1000 B/s == 1 B/ms
	tb.Fill(0, 0)
	if !tb.Charge(0, 1000, 0) {
		t.Fatal("burst draw rejected")
	}
	// 1 ms refills exactly 1 byte — and, critically, a sequence of many
	// sub-byte accesses loses nothing: 10 × 100 µs = 1 byte exactly.
	for i := 1; i <= 10; i++ {
		tb.Charge(0, 2000, Time(i)*100_000) // hopeless charge, pure refill
	}
	if lvl, _ := tb.Level(0, 1_000_000); lvl != 1 {
		t.Fatalf("10×100µs at 1B/ms refilled %d bytes, want exactly 1 (fractional drift)", lvl)
	}
	if !tb.Charge(0, 1, 1_000_000) {
		t.Fatal("the accumulated byte is not spendable")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := newTB(t, 1, 1_000_000, 500)
	tb.Fill(0, 0)
	// Idle for an hour: level caps at burst, not rate·Δt.
	if lvl, _ := tb.Level(0, time.Hour.Nanoseconds()); lvl != 500 {
		t.Fatalf("level %d after long idle, want burst 500", lvl)
	}
}

// TestTokenBucketRefillOverflow pins the satellite edge case: a huge
// elapsed time times a huge rate must clamp to burst, not wrap int64
// into a negative level.
func TestTokenBucketRefillOverflow(t *testing.T) {
	tb := newTB(t, 1, 1<<40, MaxBurstBytes) // ~1 TB/s, 8 GiB burst
	tb.Fill(0, 0)
	if !tb.Charge(0, 1<<20, 0) {
		t.Fatal("initial draw rejected")
	}
	// Δt·rate ≈ 2^63·2^40 — astronomically past int64. The clamp must
	// kick in before the multiplication.
	huge := Time(1) << 62
	if lvl, _ := tb.Level(0, huge); lvl != MaxBurstBytes {
		t.Fatalf("level %d after huge idle, want clamped burst %d", lvl, MaxBurstBytes)
	}
	if u, _ := tb.LevelUnits(0); u < 0 {
		t.Fatal("scaled level overflowed negative")
	}
	// And the whole burst is chargeable in one maximal draw.
	if !tb.Charge(0, int(MaxBurstBytes), huge) {
		t.Fatal("full-burst charge rejected after clamp")
	}
}

// TestTokenBucketClockRegression pins the other satellite edge case:
// time running backwards must neither mint tokens nor move the bucket's
// clock backwards (which would double-refill once time recovers).
func TestTokenBucketClockRegression(t *testing.T) {
	tb := newTB(t, 1, 1000, 100)
	tb.Fill(0, 1_000_000_000)
	if !tb.Charge(0, 100, 1_000_000_000) {
		t.Fatal("burst draw rejected")
	}
	// Regressed accesses: no refill, clock pinned at its high-water mark.
	if tb.Charge(0, 1, 500_000_000) {
		t.Fatal("regressed clock minted tokens")
	}
	if last, _ := tb.LastRefill(0); last != 1_000_000_000 {
		t.Fatalf("bucket clock moved backwards to %d", last)
	}
	// Time recovers: refill counts only from the high-water mark, so the
	// regressed interval is not paid out twice.
	if lvl, _ := tb.Level(0, 1_001_000_000); lvl != 1 { // 1 ms past the mark
		t.Fatalf("level %d after recovery, want 1", lvl)
	}
}

func TestTokenBucketRangeAndReuse(t *testing.T) {
	tb := newTB(t, 2, 1000, 100)
	if tb.Charge(-1, 1, 0) || tb.Charge(2, 1, 0) {
		t.Fatal("out-of-range charge accepted")
	}
	if tb.Charge(0, -1, 0) {
		t.Fatal("negative charge accepted")
	}
	// A draw past the maximum bucket depth can never conform; scaling
	// it would wrap the fixed point and mint tokens, so it must be
	// denied before the multiplication — with the level untouched.
	tb.Fill(0, 0)
	if tb.Charge(0, int(MaxBurstBytes)+1, 0) {
		t.Fatal("over-depth charge accepted (fixed-point overflow would mint tokens)")
	}
	if lvl, _ := tb.Level(0, 0); lvl != 100 {
		t.Fatalf("denied over-depth charge consumed tokens: level %d", lvl)
	}
	if err := tb.Fill(2, 0); err == nil {
		t.Fatal("out-of-range fill accepted")
	}
	// Slot reuse: a drained bucket re-Filled for a new subscriber starts
	// with a clean full burst regardless of its history.
	tb.Fill(1, 0)
	tb.Charge(1, 100, 0)
	tb.Fill(1, 42)
	if lvl, _ := tb.Level(1, 42); lvl != 100 {
		t.Fatalf("reused slot level %d, want full burst", lvl)
	}
}
