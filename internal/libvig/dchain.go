package libvig

import "errors"

// DChain errors.
var (
	ErrChainFull     = errors.New("libvig: no free index in chain")
	ErrChainNotAlloc = errors.New("libvig: index not allocated")
	ErrChainRange    = errors.New("libvig: index out of range")
	ErrChainBusy     = errors.New("libvig: index already allocated")
)

// DChain is libVig's "double chain" index allocator, the core of the
// expirator abstraction (§5.1.1). It hands out integer indices in
// [0, capacity) and keeps the allocated ones in a doubly linked list
// ordered by last-touch time, so that
//
//   - Allocate takes an index from the free list and appends it at the
//     young end,
//   - Rejuvenate moves an index to the young end and refreshes its
//     timestamp,
//   - ExpireOne pops the old end iff its timestamp is below the deadline.
//
// The flow table composes DChain (which index is live, and how stale)
// with DoubleMap (what flow lives at that index).
//
// Contract sketch:
//
//	dchainp(c, A, cap) ≡ A is the sequence of allocated (index, t) pairs,
//	  ordered by non-decreasing t, indices distinct, |A| ≤ cap.
//	Allocate(t):  requires |A| < cap ∧ t ≥ max timestamps
//	              ensures A' = A ++ [(i, t)] with i fresh; returns i
//	Rejuvenate(i,t): requires (i,_) ∈ A ∧ t ≥ max timestamps
//	              ensures A' = (A \ (i,_)) ++ [(i, t)]
//	ExpireOne(d): if A = [(i,t)]++rest ∧ t < d: A' = rest, returns (i,true)
//	              else: A unchanged, returns (_,false)
type DChain struct {
	// next/prev implement both lists. Slot capacity is the sentinel head
	// of the allocated list; slot capacity+1 is the head of the free list.
	next       []int32
	prev       []int32
	timestamps []Time
	alloc      []bool
	size       int
}

const (
	allocHeadOff = 0 // offset of allocated-list sentinel past capacity
	freeHeadOff  = 1 // offset of free-list sentinel past capacity
)

// NewDChain returns a chain able to allocate indices in [0, capacity).
func NewDChain(capacity int) (*DChain, error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	c := &DChain{
		next:       make([]int32, capacity+2),
		prev:       make([]int32, capacity+2),
		timestamps: make([]Time, capacity),
		alloc:      make([]bool, capacity),
	}
	prefault(c.timestamps)
	prefault(c.alloc)
	ah, fh := c.allocHead(), c.freeHead()
	c.next[ah], c.prev[ah] = int32(ah), int32(ah)
	// Chain all cells into the free list, ascending, so allocation order
	// is deterministic (matches the Vigor implementation).
	prevCell := int32(fh)
	for i := 0; i < capacity; i++ {
		c.next[prevCell] = int32(i)
		c.prev[i] = prevCell
		prevCell = int32(i)
	}
	c.next[prevCell] = int32(fh)
	c.prev[fh] = prevCell
	return c, nil
}

func (c *DChain) allocHead() int { return len(c.alloc) + allocHeadOff }
func (c *DChain) freeHead() int  { return len(c.alloc) + freeHeadOff }

// Capacity returns the number of allocatable indices.
func (c *DChain) Capacity() int { return len(c.alloc) }

// Size returns the number of allocated indices.
func (c *DChain) Size() int { return c.size }

// IsAllocated reports whether index i is currently allocated.
func (c *DChain) IsAllocated(i int) bool {
	return i >= 0 && i < len(c.alloc) && c.alloc[i]
}

func (c *DChain) unlink(i int32) {
	c.next[c.prev[i]] = c.next[i]
	c.prev[c.next[i]] = c.prev[i]
}

func (c *DChain) linkBefore(i, at int32) {
	p := c.prev[at]
	c.next[p] = i
	c.prev[i] = p
	c.next[i] = at
	c.prev[at] = i
}

// linkAfter inserts i right after at. Freed indices go to the free
// list's head so the next allocation reuses the cache-hot index (the
// LIFO reuse DPDK-style allocators rely on).
func (c *DChain) linkAfter(i, at int32) {
	n := c.next[at]
	c.next[at] = i
	c.prev[i] = at
	c.next[i] = n
	c.prev[n] = i
}

// Allocate takes a free index, stamps it with now, and places it at the
// young end of the allocated list. Returns ErrChainFull when no index is
// free.
func (c *DChain) Allocate(now Time) (int, error) {
	fh := int32(c.freeHead())
	i := c.next[fh]
	if i == fh {
		return 0, ErrChainFull
	}
	c.unlink(i)
	// Young end = just before the allocated sentinel.
	c.linkBefore(i, int32(c.allocHead()))
	c.alloc[i] = true
	c.timestamps[i] = now
	c.size++
	return int(i), nil
}

// AllocateIndex takes a specific free index, stamps it with now, and
// places it at the young end of the allocated list — the restore half
// of shard migration, where an index is not just a handle but a name
// other state refers to (an LB backend slot referenced by CHT buckets
// and sticky flows must keep its number across a move). The caller is
// responsible for stamp monotonicity: like Allocate, now must be ≥
// every timestamp already in the allocated list, which restore paths
// guarantee by replaying records in stamp order. Requires i free
// (checked).
func (c *DChain) AllocateIndex(i int, now Time) error {
	if i < 0 || i >= len(c.alloc) {
		return ErrChainRange
	}
	if c.alloc[i] {
		return ErrChainBusy
	}
	c.unlink(int32(i))
	c.linkBefore(int32(i), int32(c.allocHead()))
	c.alloc[i] = true
	c.timestamps[i] = now
	c.size++
	return nil
}

// Rejuvenate refreshes index i's timestamp to now and moves it to the
// young end. Requires i allocated (checked).
func (c *DChain) Rejuvenate(i int, now Time) error {
	if i < 0 || i >= len(c.alloc) {
		return ErrChainRange
	}
	if !c.alloc[i] {
		return ErrChainNotAlloc
	}
	c.unlink(int32(i))
	c.linkBefore(int32(i), int32(c.allocHead()))
	c.timestamps[i] = now
	return nil
}

// Timestamp returns the last-touch time of index i.
// Requires i allocated (checked).
func (c *DChain) Timestamp(i int) (Time, error) {
	if i < 0 || i >= len(c.alloc) {
		return 0, ErrChainRange
	}
	if !c.alloc[i] {
		return 0, ErrChainNotAlloc
	}
	return c.timestamps[i], nil
}

// ExpireOne frees the oldest index iff its timestamp is strictly below
// deadline, returning the freed index and true. If the chain is empty or
// the oldest entry is fresh, it returns (0, false) and changes nothing.
func (c *DChain) ExpireOne(deadline Time) (int, bool) {
	ah := int32(c.allocHead())
	i := c.next[ah] // old end
	if i == ah {
		return 0, false
	}
	if c.timestamps[i] >= deadline {
		return 0, false
	}
	c.unlink(i)
	c.linkAfter(i, int32(c.freeHead()))
	c.alloc[i] = false
	c.size--
	return int(i), true
}

// Oldest returns the oldest allocated index and its timestamp.
func (c *DChain) Oldest() (int, Time, bool) {
	ah := int32(c.allocHead())
	i := c.next[ah]
	if i == ah {
		return 0, 0, false
	}
	return int(i), c.timestamps[i], true
}

// Free releases index i regardless of age (used by NFs that remove state
// for reasons other than expiry, e.g. TCP FIN tracking extensions).
// Requires i allocated (checked).
func (c *DChain) Free(i int) error {
	if i < 0 || i >= len(c.alloc) {
		return ErrChainRange
	}
	if !c.alloc[i] {
		return ErrChainNotAlloc
	}
	c.unlink(int32(i))
	c.linkAfter(int32(i), int32(c.freeHead()))
	c.alloc[i] = false
	c.size--
	return nil
}

// AllocatedAsc appends the allocated indices old-to-young to dst and
// returns it. For contract checking and tests.
func (c *DChain) AllocatedAsc(dst []int) []int {
	ah := int32(c.allocHead())
	for i := c.next[ah]; i != ah; i = c.next[i] {
		dst = append(dst, int(i))
	}
	return dst
}
