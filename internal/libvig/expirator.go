package libvig

// IndexEraser is the hook the expirator uses to tear down per-index state
// in sibling structures when an index expires. VigNAT passes the flow
// table (DoubleMap.Erase) and the port allocator here.
type IndexEraser interface {
	// EraseIndex releases all state associated with index i.
	EraseIndex(i int) error
}

// IndexEraserFunc adapts a function to the IndexEraser interface.
type IndexEraserFunc func(i int) error

// EraseIndex implements IndexEraser.
func (f IndexEraserFunc) EraseIndex(i int) error { return f(i) }

// ExpireItems is libVig's expirator (§5.1.1): it frees every index in the
// chain whose last-touch time is strictly older than deadline, invoking
// each eraser for every freed index, and returns the number of expired
// indices.
//
// Contract sketch: afterwards no allocated index has timestamp < deadline,
// the freed indices are exactly those that did, and the erasers were
// called once per freed index, oldest first.
//
// The per-packet call pattern in the NAT is
//
//	ExpireItems(chain, deadline=now-Texp, flowtable, portalloc)
//
// which implements Fig. 6's expire_flows(t).
func ExpireItems(chain *DChain, deadline Time, erasers ...IndexEraser) (int, error) {
	n := 0
	for {
		i, ok := chain.ExpireOne(deadline)
		if !ok {
			return n, nil
		}
		for _, e := range erasers {
			if err := e.EraseIndex(i); err != nil {
				return n, err
			}
		}
		n++
	}
}
