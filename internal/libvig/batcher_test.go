package libvig

import (
	"errors"
	"testing"
)

// These tests document the Batcher's error contract, which the nf
// pipeline's TX path depends on:
//
//   - a flush error (from Push auto-flush or explicit Flush) propagates
//     to the caller;
//   - a failed flush still CONSUMES the batch — the items were handed
//     to the flush function exactly once, and retrying delivery is the
//     flush function's business (the TX flush, for instance, frees
//     rejected mbufs itself rather than asking for a replay);
//   - after an error the batcher is empty and immediately reusable.

var errTX = errors.New("tx ring wedged")

func TestBatcherPushAutoFlushErrorPropagates(t *testing.T) {
	fail := true
	var got [][]int
	b, err := NewBatcher[int](2, func(items []int) error {
		cp := append([]int(nil), items...)
		got = append(got, cp)
		if fail {
			return errTX
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := b.Push(1); err != nil {
		t.Fatalf("push below capacity flushed: %v", err)
	}
	if err := b.Push(2); !errors.Is(err, errTX) {
		t.Fatalf("filling push returned %v, want the flush error", err)
	}
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("flush function saw %v, want exactly one batch [1 2]", got)
	}
	if b.Len() != 0 {
		t.Fatalf("failed flush left %d items buffered, want 0 (batch is consumed)", b.Len())
	}
}

func TestBatcherExplicitFlushErrorPropagates(t *testing.T) {
	b, _ := NewBatcher[int](8, func([]int) error { return errTX })
	if err := b.Push(7); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); !errors.Is(err, errTX) {
		t.Fatalf("Flush returned %v, want the flush error", err)
	}
	// Flushing the now-empty batcher is a no-op and must not re-invoke
	// the failing flush function.
	if err := b.Flush(); err != nil {
		t.Fatalf("empty flush after error returned %v, want nil", err)
	}
}

func TestBatcherReuseAfterError(t *testing.T) {
	fail := true
	var delivered []int
	b, _ := NewBatcher[int](2, func(items []int) error {
		if fail {
			return errTX
		}
		delivered = append(delivered, items...)
		return nil
	})

	b.Push(1)
	if err := b.Push(2); !errors.Is(err, errTX) {
		t.Fatalf("expected flush error, got %v", err)
	}

	// The batcher recovers: the same instance keeps batching once the
	// flush function heals, with no residue from the failed batch.
	fail = false
	for i := 10; i < 13; i++ {
		if err := b.Push(i); err != nil {
			t.Fatalf("push after recovery: %v", err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	want := []int{10, 11, 12}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v after recovery, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v after recovery, want %v", delivered, want)
		}
	}
}
