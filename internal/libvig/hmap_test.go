package libvig

import (
	"errors"
	"testing"
)

// tKey is a test key with a deliberately weak hash option to force
// collisions and long probe chains.
type tKey struct {
	v    uint64
	weak bool
}

func (k tKey) Hash() uint64 {
	if k.weak {
		return k.v % 3 // heavy collisions
	}
	x := k.v
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func TestMapPutGetErase(t *testing.T) {
	m, err := NewMap[tKey](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Put(tKey{v: uint64(i)}, i*10); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if m.Size() != 8 {
		t.Fatalf("size %d", m.Size())
	}
	for i := 0; i < 8; i++ {
		v, ok := m.Get(tKey{v: uint64(i)})
		if !ok || v != i*10 {
			t.Fatalf("get %d: %d %v", i, v, ok)
		}
	}
	if err := m.Erase(tKey{v: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(tKey{v: 3}); ok {
		t.Fatal("erased key still present")
	}
	if m.Size() != 7 {
		t.Fatalf("size %d after erase", m.Size())
	}
}

func TestMapFullRejects(t *testing.T) {
	m, _ := NewMap[tKey](2)
	_ = m.Put(tKey{v: 1}, 1)
	_ = m.Put(tKey{v: 2}, 2)
	if err := m.Put(tKey{v: 3}, 3); !errors.Is(err, ErrMapFull) {
		t.Fatalf("want ErrMapFull, got %v", err)
	}
}

func TestMapDuplicateRejects(t *testing.T) {
	m, _ := NewMap[tKey](4)
	_ = m.Put(tKey{v: 1}, 1)
	if err := m.Put(tKey{v: 1}, 2); !errors.Is(err, ErrMapDupKey) {
		t.Fatalf("want ErrMapDupKey, got %v", err)
	}
	if v, _ := m.Get(tKey{v: 1}); v != 1 {
		t.Fatalf("duplicate put altered value: %d", v)
	}
}

func TestMapEraseAbsentRejects(t *testing.T) {
	m, _ := NewMap[tKey](4)
	if err := m.Erase(tKey{v: 9}); !errors.Is(err, ErrMapNoKey) {
		t.Fatalf("want ErrMapNoKey, got %v", err)
	}
}

// TestMapCollisionChains drives the weak-hash keys so every operation
// probes through long collision clusters, exercising the chain-counter
// deletion algorithm.
func TestMapCollisionChains(t *testing.T) {
	const n = 48
	m, _ := NewMap[tKey](n)
	for i := 0; i < n; i++ {
		if err := m.Put(tKey{v: uint64(i), weak: true}, i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Delete every third key, then verify all lookups.
	for i := 0; i < n; i += 3 {
		if err := m.Erase(tKey{v: uint64(i), weak: true}); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(tKey{v: uint64(i), weak: true})
		if i%3 == 0 {
			if ok {
				t.Fatalf("key %d should be gone", i)
			}
		} else if !ok || v != i {
			t.Fatalf("key %d lost after deletions: %d %v", i, v, ok)
		}
	}
	// Reinsert into the holes; chains must still terminate lookups.
	for i := 0; i < n; i += 3 {
		if err := m.Put(tKey{v: uint64(i + 1000), weak: true}, i); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 3 {
		if _, ok := m.Get(tKey{v: uint64(i + 1000), weak: true}); !ok {
			t.Fatalf("reinserted key %d missing", i)
		}
	}
}

func TestMapForEach(t *testing.T) {
	m, _ := NewMap[tKey](8)
	want := map[uint64]int{}
	for i := 0; i < 5; i++ {
		_ = m.Put(tKey{v: uint64(i)}, i)
		want[uint64(i)] = i
	}
	got := map[uint64]int{}
	m.ForEach(func(k tKey, v int) bool {
		got[k.v] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach mismatch at %d", k)
		}
	}
	// Early termination.
	n := 0
	m.ForEach(func(tKey, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEach ignored early stop: %d visits", n)
	}
}

func TestMapBadCapacity(t *testing.T) {
	if _, err := NewMap[tKey](0); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewMap[tKey](-5); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("negative capacity accepted")
	}
}
