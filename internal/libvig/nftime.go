// Package libvig is the Go analogue of the paper's libVig: a library of
// data structures that hold all of a network function's "difficult" state
// behind small, contract-specified interfaces (§5.1 of the paper).
//
// Every structure preallocates all memory at construction time, exactly as
// libVig does: the packet path performs no allocation, which both bounds
// memory use and keeps per-packet cost predictable. Each method documents
// its contract (the executable analogue of the paper's separation-logic
// pre/post-conditions); package libvig/contracts provides abstract-state
// models and checked wrappers used for the P3 refinement proofs.
package libvig

import (
	"sync/atomic"
	"time"
)

// Time is a timestamp in nanoseconds, the unit used throughout the NF.
// The paper's nf_time abstraction returns seconds; nanoseconds let the
// testbed measure microsecond latencies without a second clock.
type Time = int64

// Clock is the nf_time abstraction (§5.1.1): the single source of time for
// an NF. Injecting it keeps expiry logic deterministic under test and lets
// the testbed run on virtual time.
type Clock interface {
	// Now returns the current time. Successive calls never go backwards.
	Now() Time
}

// SystemClock reads the machine's monotonic clock.
type SystemClock struct {
	base time.Time
}

// NewSystemClock returns a Clock backed by the OS monotonic clock.
func NewSystemClock() *SystemClock {
	return &SystemClock{base: time.Now()}
}

// Now implements Clock.
func (c *SystemClock) Now() Time {
	return time.Since(c.base).Nanoseconds()
}

// VirtualClock is a manually advanced clock for deterministic tests and
// for the virtual-time testbed. Reads and advances are atomic, so
// run-to-completion workers may read it while the wire side advances it
// (the analogue of every core reading the same TSC).
type VirtualClock struct {
	now atomic.Int64
}

// NewVirtualClock returns a VirtualClock starting at start.
func NewVirtualClock(start Time) *VirtualClock {
	c := &VirtualClock{}
	c.now.Store(start)
	return c
}

// Now implements Clock.
func (c *VirtualClock) Now() Time { return c.now.Load() }

// Advance moves the clock forward by d nanoseconds. d must be >= 0;
// negative advances are ignored so time never goes backwards.
func (c *VirtualClock) Advance(d Time) {
	if d > 0 {
		c.now.Add(d)
	}
}

// Set jumps the clock to t if t is later than the current time.
func (c *VirtualClock) Set(t Time) {
	for {
		cur := c.now.Load()
		if t <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}
