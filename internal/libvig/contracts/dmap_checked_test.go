package contracts

import (
	"testing"
	"testing/quick"
)

func TestDoubleMapRefinement(t *testing.T) {
	type dop struct {
		Code uint8
		Idx  uint8
		KA   qKey
		KB   qKey
		Val  uint8
	}
	f := func(ops []dop) bool {
		c, err := NewCheckedDoubleMap[qKey, qKey](9)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			idx := int(op.Idx) % 11 // includes out-of-range probes
			switch op.Code % 4 {
			case 0:
				if err := c.Put(idx, op.KA, op.KB, int(op.Val)); err != nil {
					t.Log(err)
					return false
				}
			case 1:
				if err := c.Erase(idx); err != nil {
					t.Log(err)
					return false
				}
			case 2:
				if err := c.GetByFst(op.KA); err != nil {
					t.Log(err)
					return false
				}
			case 3:
				if err := c.GetBySnd(op.KB); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckedDoubleMapDetectsViolation: the meta-test that the checker
// is not vacuous.
func TestCheckedDoubleMapDetectsViolation(t *testing.T) {
	c, err := NewCheckedDoubleMap[qKey, qKey](4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(0, qKey{V: 1}, qKey{V: 2}, 7); err != nil {
		t.Fatal(err)
	}
	c.Model[0] = dmapEntry[qKey, qKey]{V: 99, K1: qKey{V: 1}, K2: qKey{V: 2}}
	if err := c.Put(1, qKey{V: 3}, qKey{V: 4}, 8); err == nil {
		t.Fatal("divergence not detected")
	}
}
