package contracts

import (
	"fmt"
	"math/big"

	"vignat/internal/libvig"
)

// abstractBucket is one bucket of the token-bucket contract's abstract
// state: the scaled level and the bucket clock. The model computes the
// refill law — level' = min(burst, level + rate·Δt), Δt clamped at 0 —
// over arbitrary-precision integers, so the implementation's overflow
// clamping is checked against the unclamped mathematical definition
// rather than against a second copy of the same trick.
type abstractBucket struct {
	Level *big.Int // in 1e-9-byte units, like the implementation
	Last  libvig.Time
	Bound bool // Fill has run at least once (unbound buckets are unspecified)
}

// CheckedTokenBucket runs a concrete token-bucket vector against the
// big-integer model in lockstep.
type CheckedTokenBucket struct {
	Impl  *libvig.TokenBucket
	Model []abstractBucket

	rateU  *big.Int // level units per nanosecond == bytes/second
	burstU *big.Int
	unit   *big.Int // units per byte
}

// NewCheckedTokenBucket builds the pair.
func NewCheckedTokenBucket(capacity int, rate, burst int64) (*CheckedTokenBucket, error) {
	tb, err := libvig.NewTokenBucket(capacity, rate, burst)
	if err != nil {
		return nil, err
	}
	unit := big.NewInt(1_000_000_000)
	return &CheckedTokenBucket{
		Impl:   tb,
		Model:  make([]abstractBucket, capacity),
		rateU:  big.NewInt(rate),
		burstU: new(big.Int).Mul(big.NewInt(burst), unit),
		unit:   unit,
	}, nil
}

// refill advances the model bucket to now by the unclamped law.
func (c *CheckedTokenBucket) refill(m *abstractBucket, now libvig.Time) {
	if dt := now - m.Last; dt > 0 {
		add := new(big.Int).Mul(big.NewInt(dt), c.rateU)
		m.Level.Add(m.Level, add)
		if m.Level.Cmp(c.burstU) > 0 {
			m.Level.Set(c.burstU)
		}
		m.Last = now
	}
}

// Fill executes Fill on both sides and checks refinement.
func (c *CheckedTokenBucket) Fill(i int, now libvig.Time) error {
	err := c.Impl.Fill(i, now)
	if i < 0 || i >= len(c.Model) {
		if err == nil {
			return &Violation{"Fill", fmt.Sprintf("accepted out-of-range index %d", i)}
		}
		return nil
	}
	if err != nil {
		return &Violation{"Fill", "rejected in-range fill: " + err.Error()}
	}
	c.Model[i] = abstractBucket{Level: new(big.Int).Set(c.burstU), Last: now, Bound: true}
	return c.check("Fill", i)
}

// Charge executes Charge on both sides and checks the conform/deny
// decision and the resulting level against the model.
func (c *CheckedTokenBucket) Charge(i int, bytes int, now libvig.Time) (bool, error) {
	ok := c.Impl.Charge(i, bytes, now)
	if i < 0 || i >= len(c.Model) || bytes < 0 || int64(bytes) > libvig.MaxBurstBytes {
		// Invalid draws (including over-depth ones, which could never
		// conform and whose scaling would overflow) are denied before
		// the refill, leaving the bucket untouched on both sides.
		if ok {
			return false, &Violation{"Charge", fmt.Sprintf("accepted invalid charge (i=%d, bytes=%d)", i, bytes)}
		}
		return false, nil
	}
	m := &c.Model[i]
	if !m.Bound {
		return ok, nil // unbound bucket: behavior unspecified, nothing to check
	}
	c.refill(m, now)
	cost := new(big.Int).Mul(big.NewInt(int64(bytes)), c.unit)
	conforms := cost.Cmp(m.Level) <= 0
	if ok != conforms {
		return false, &Violation{"Charge", fmt.Sprintf(
			"bucket %d: impl says conform=%v, model level %v vs cost %v", i, ok, m.Level, cost)}
	}
	if conforms {
		m.Level.Sub(m.Level, cost)
	}
	return ok, c.check("Charge", i)
}

// check compares bucket i's concrete level and clock with the model.
func (c *CheckedTokenBucket) check(op string, i int) error {
	if !c.Model[i].Bound {
		return nil
	}
	lvl, err := c.Impl.LevelUnits(i)
	if err != nil {
		return &Violation{op, err.Error()}
	}
	if big.NewInt(lvl).Cmp(c.Model[i].Level) != 0 {
		return &Violation{op, fmt.Sprintf("bucket %d level %d, model %v", i, lvl, c.Model[i].Level)}
	}
	last, err := c.Impl.LastRefill(i)
	if err != nil {
		return &Violation{op, err.Error()}
	}
	if last != c.Model[i].Last {
		return &Violation{op, fmt.Sprintf("bucket %d clock %d, model %d", i, last, c.Model[i].Last)}
	}
	return nil
}
