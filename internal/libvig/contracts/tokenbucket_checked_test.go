package contracts

import (
	"testing"
	"testing/quick"

	"vignat/internal/libvig"
)

// tbOp is one random token-bucket operation. Deltas mix small forward
// steps, large jumps, and regressions; charges mix sub-byte-rate dribbles
// and over-burst slams, so the sequences hit the clamp, the drift-free
// refill, and the regression guard.
type tbOp struct {
	Code  uint8
	Idx   uint8
	Bytes uint16
	Delta int32 // applied to the virtual clock; negatives regress
}

func TestTokenBucketRefinement(t *testing.T) {
	f := func(ops []tbOp) bool {
		c, err := NewCheckedTokenBucket(5, 1_000_000, 4096) // 1 MB/s, 4 KiB burst
		if err != nil {
			t.Fatal(err)
		}
		now := libvig.Time(0)
		for _, op := range ops {
			// The shared clock only moves forward; per-bucket regression
			// is exercised by charging bucket A, jumping, then charging
			// bucket B whose last-refill is now in A's past — plus the
			// explicit negative deltas fed to Charge below.
			at := now + libvig.Time(op.Delta)
			switch op.Code % 3 {
			case 0:
				if err := c.Fill(int(op.Idx%6), at); err != nil {
					t.Log(err)
					return false
				}
			default:
				if _, err := c.Charge(int(op.Idx%6), int(op.Bytes), at); err != nil {
					t.Log(err)
					return false
				}
			}
			if op.Delta > 0 {
				now += libvig.Time(op.Delta)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTokenBucketRefinementExtremes drives the checked pair through the
// deliberate nasties: overflow-scale idle gaps, full-burst draws, and
// hard clock regressions, where the big-integer model and the clamped
// implementation are most likely to part ways.
func TestTokenBucketRefinementExtremes(t *testing.T) {
	c, err := NewCheckedTokenBucket(2, libvig.MaxRateBytesPerSec, libvig.MaxBurstBytes)
	if err != nil {
		t.Fatal(err)
	}
	step := func(what string, e error) {
		if e != nil {
			t.Fatalf("%s: %v", what, e)
		}
	}
	step("fill", c.Fill(0, 0))
	_, err = c.Charge(0, int(libvig.MaxBurstBytes), 0) // drain completely
	step("drain", err)
	_, err = c.Charge(0, 1, libvig.Time(1)<<62) // astronomically late refill
	step("late refill", err)
	_, err = c.Charge(0, int(libvig.MaxBurstBytes), libvig.Time(1)<<62)
	step("post-clamp full draw", err)
	_, err = c.Charge(0, 1, 17) // hard regression after the jump
	step("regression", err)
	step("refill bucket 1 untouched", c.Fill(1, 5))
	_, err = c.Charge(1, 10, 3) // regression on a fresh bucket
	step("fresh regression", err)
}
