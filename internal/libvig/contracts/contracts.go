// Package contracts provides the implementation-side contract machinery
// for libVig — the analogue of the paper's P3 proof that "the libVig
// implementation behaves according to the libVig contracts" (§5.1.3).
//
// Where the paper annotates the C implementation with separation-logic
// pre/post-conditions and discharges them with VeriFast, this package
// pairs every libVig structure with an *abstract model* (the same
// abstract state the paper's contracts are written against: a sequence
// for the ring, a partial map for the hash map, a time-ordered sequence
// for the chain) and a *checked wrapper* that executes every operation
// on both and verifies, operation by operation, that the concrete
// structure refines the model. The refinement is then driven by
// property-based tests (testing/quick) over long random operation
// sequences — dynamic checking plus randomized search instead of a
// theorem prover, as DESIGN.md's substitution table records.
package contracts

import (
	"fmt"
	"sort"

	"vignat/internal/libvig"
)

// Violation describes a contract violation detected by a checked
// wrapper: the concrete structure diverged from its abstract model.
type Violation struct {
	Op     string
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("contract violation in %s: %s", v.Op, v.Detail)
}

// --- Ring ---

// AbstractRing is the ring's abstract state: the sequence lst of the
// paper's ringp predicate.
type AbstractRing[T comparable] struct {
	Lst []T
	Cap int
}

// CheckedRing runs a concrete ring and its abstract model in lockstep.
type CheckedRing[T comparable] struct {
	Impl  *libvig.Ring[T]
	Model AbstractRing[T]
}

// NewCheckedRing builds the pair.
func NewCheckedRing[T comparable](capacity int) (*CheckedRing[T], error) {
	r, err := libvig.NewRing[T](capacity)
	if err != nil {
		return nil, err
	}
	return &CheckedRing[T]{Impl: r, Model: AbstractRing[T]{Cap: capacity}}, nil
}

// PushBack executes ring_push_back on both sides and checks refinement.
func (c *CheckedRing[T]) PushBack(v T) error {
	wantErr := len(c.Model.Lst) == c.Model.Cap
	err := c.Impl.PushBack(v)
	if wantErr {
		if err == nil {
			return &Violation{"PushBack", "accepted into a full ring"}
		}
		return nil
	}
	if err != nil {
		return &Violation{"PushBack", "rejected though ring has room: " + err.Error()}
	}
	c.Model.Lst = append(c.Model.Lst, v)
	return c.check("PushBack")
}

// PopFront executes ring_pop_front on both sides and checks the Fig. 3
// post-condition: the returned element is head(lst) and the new state is
// tail(lst).
func (c *CheckedRing[T]) PopFront() (T, error) {
	var zero T
	v, err := c.Impl.PopFront()
	if len(c.Model.Lst) == 0 {
		if err == nil {
			return zero, &Violation{"PopFront", "popped from an empty ring"}
		}
		return zero, nil
	}
	if err != nil {
		return zero, &Violation{"PopFront", "failed though ring non-empty: " + err.Error()}
	}
	if v != c.Model.Lst[0] {
		return zero, &Violation{"PopFront", fmt.Sprintf("returned %v, head is %v", v, c.Model.Lst[0])}
	}
	c.Model.Lst = c.Model.Lst[1:]
	return v, c.check("PopFront")
}

func (c *CheckedRing[T]) check(op string) error {
	if c.Impl.Len() != len(c.Model.Lst) {
		return &Violation{op, fmt.Sprintf("length %d, model %d", c.Impl.Len(), len(c.Model.Lst))}
	}
	got := c.Impl.Snapshot(nil)
	for i := range got {
		if got[i] != c.Model.Lst[i] {
			return &Violation{op, fmt.Sprintf("element %d is %v, model %v", i, got[i], c.Model.Lst[i])}
		}
	}
	if c.Impl.Full() != (len(c.Model.Lst) == c.Model.Cap) {
		return &Violation{op, "Full() disagrees with model"}
	}
	if c.Impl.Empty() != (len(c.Model.Lst) == 0) {
		return &Violation{op, "Empty() disagrees with model"}
	}
	return nil
}

// --- Map ---

// CheckedMap runs a concrete libVig map against the partial-function
// model of the mapp predicate.
type CheckedMap[K libvig.Key] struct {
	Impl  *libvig.Map[K]
	Model map[K]int
	Cap   int
}

// NewCheckedMap builds the pair.
func NewCheckedMap[K libvig.Key](capacity int) (*CheckedMap[K], error) {
	m, err := libvig.NewMap[K](capacity)
	if err != nil {
		return nil, err
	}
	return &CheckedMap[K]{Impl: m, Model: make(map[K]int), Cap: capacity}, nil
}

// Get checks the mapp Get post-condition.
func (c *CheckedMap[K]) Get(k K) (int, bool, error) {
	v, ok := c.Impl.Get(k)
	mv, mok := c.Model[k]
	if ok != mok {
		return 0, false, &Violation{"Get", fmt.Sprintf("found=%v, model=%v for %v", ok, mok, k)}
	}
	if ok && v != mv {
		return 0, false, &Violation{"Get", fmt.Sprintf("value %d, model %d for %v", v, mv, k)}
	}
	return v, ok, nil
}

// Put checks the mapp Put pre/post-conditions.
func (c *CheckedMap[K]) Put(k K, v int) error {
	_, dup := c.Model[k]
	full := len(c.Model) == c.Cap
	err := c.Impl.Put(k, v)
	switch {
	case dup:
		if err == nil {
			return &Violation{"Put", fmt.Sprintf("accepted duplicate key %v", k)}
		}
	case full:
		if err == nil {
			return &Violation{"Put", "accepted into a full map"}
		}
	default:
		if err != nil {
			return &Violation{"Put", "rejected valid insert: " + err.Error()}
		}
		c.Model[k] = v
	}
	return c.sizeCheck("Put")
}

// Erase checks the mapp Erase pre/post-conditions.
func (c *CheckedMap[K]) Erase(k K) error {
	_, present := c.Model[k]
	err := c.Impl.Erase(k)
	if present {
		if err != nil {
			return &Violation{"Erase", "failed to erase present key: " + err.Error()}
		}
		delete(c.Model, k)
	} else if err == nil {
		return &Violation{"Erase", fmt.Sprintf("erased absent key %v", k)}
	}
	return c.sizeCheck("Erase")
}

func (c *CheckedMap[K]) sizeCheck(op string) error {
	if c.Impl.Size() != len(c.Model) {
		return &Violation{op, fmt.Sprintf("size %d, model %d", c.Impl.Size(), len(c.Model))}
	}
	return nil
}

// FullCheck verifies the complete map contents against the model — the
// closing step of a refinement run.
func (c *CheckedMap[K]) FullCheck() error {
	seen := 0
	var verr error
	c.Impl.ForEach(func(k K, v int) bool {
		seen++
		mv, ok := c.Model[k]
		if !ok {
			verr = &Violation{"FullCheck", fmt.Sprintf("stored key %v not in model", k)}
			return false
		}
		if mv != v {
			verr = &Violation{"FullCheck", fmt.Sprintf("key %v has %d, model %d", k, v, mv)}
			return false
		}
		return true
	})
	if verr != nil {
		return verr
	}
	if seen != len(c.Model) {
		return &Violation{"FullCheck", fmt.Sprintf("visited %d keys, model has %d", seen, len(c.Model))}
	}
	return nil
}

// --- DChain ---

// chainEntry is one allocated (index, timestamp) pair of the dchainp
// abstract sequence.
type chainEntry struct {
	Index int
	T     libvig.Time
}

// CheckedDChain runs a concrete chain against the time-ordered-sequence
// model.
type CheckedDChain struct {
	Impl  *libvig.DChain
	Model []chainEntry // ordered old → young
	Cap   int
}

// NewCheckedDChain builds the pair.
func NewCheckedDChain(capacity int) (*CheckedDChain, error) {
	ch, err := libvig.NewDChain(capacity)
	if err != nil {
		return nil, err
	}
	return &CheckedDChain{Impl: ch, Cap: capacity}, nil
}

func (c *CheckedDChain) find(i int) int {
	for j, e := range c.Model {
		if e.Index == i {
			return j
		}
	}
	return -1
}

// Allocate checks the dchainp Allocate contract.
func (c *CheckedDChain) Allocate(now libvig.Time) (int, error) {
	idx, err := c.Impl.Allocate(now)
	if len(c.Model) == c.Cap {
		if err == nil {
			return 0, &Violation{"Allocate", "allocated from a full chain"}
		}
		return 0, nil
	}
	if err != nil {
		return 0, &Violation{"Allocate", "failed though chain has room: " + err.Error()}
	}
	if c.find(idx) >= 0 {
		return 0, &Violation{"Allocate", fmt.Sprintf("returned live index %d", idx)}
	}
	if idx < 0 || idx >= c.Cap {
		return 0, &Violation{"Allocate", fmt.Sprintf("index %d out of range", idx)}
	}
	c.Model = append(c.Model, chainEntry{idx, now})
	return idx, c.check("Allocate")
}

// Rejuvenate checks the dchainp Rejuvenate contract.
func (c *CheckedDChain) Rejuvenate(i int, now libvig.Time) error {
	pos := c.find(i)
	err := c.Impl.Rejuvenate(i, now)
	if pos < 0 {
		if err == nil {
			return &Violation{"Rejuvenate", fmt.Sprintf("accepted dead index %d", i)}
		}
		return nil
	}
	if err != nil {
		return &Violation{"Rejuvenate", "rejected live index: " + err.Error()}
	}
	c.Model = append(append(c.Model[:pos:pos], c.Model[pos+1:]...), chainEntry{i, now})
	return c.check("Rejuvenate")
}

// ExpireOne checks the dchainp ExpireOne contract.
func (c *CheckedDChain) ExpireOne(deadline libvig.Time) (int, bool, error) {
	idx, ok := c.Impl.ExpireOne(deadline)
	shouldExpire := len(c.Model) > 0 && c.Model[0].T < deadline
	if !shouldExpire {
		if ok {
			return 0, false, &Violation{"ExpireOne", fmt.Sprintf("expired fresh/absent index %d", idx)}
		}
		return 0, false, nil
	}
	if !ok {
		return 0, false, &Violation{"ExpireOne", "did not expire a stale oldest entry"}
	}
	if idx != c.Model[0].Index {
		return 0, false, &Violation{"ExpireOne", fmt.Sprintf("expired %d, oldest is %d", idx, c.Model[0].Index)}
	}
	c.Model = c.Model[1:]
	return idx, true, c.check("ExpireOne")
}

func (c *CheckedDChain) check(op string) error {
	if c.Impl.Size() != len(c.Model) {
		return &Violation{op, fmt.Sprintf("size %d, model %d", c.Impl.Size(), len(c.Model))}
	}
	got := c.Impl.AllocatedAsc(nil)
	if len(got) != len(c.Model) {
		return &Violation{op, "allocated list length diverged"}
	}
	for i := range got {
		if got[i] != c.Model[i].Index {
			return &Violation{op, fmt.Sprintf("order slot %d: impl %d, model %d", i, got[i], c.Model[i].Index)}
		}
	}
	// Timestamps must be non-decreasing old → young (dchainp ordering).
	if !sort.SliceIsSorted(c.Model, func(a, b int) bool { return c.Model[a].T < c.Model[b].T }) {
		// The model itself is maintained sorted by construction; a
		// violation here means the checker was driven with
		// time-travelling timestamps.
		return &Violation{op, "model timestamps out of order (non-monotonic clock?)"}
	}
	return nil
}

// --- PortAllocator ---

// CheckedPortAllocator runs a concrete allocator against the allocated-
// set model of the portsp predicate.
type CheckedPortAllocator struct {
	Impl  *libvig.PortAllocator
	Model map[uint16]bool
	Base  uint16
	Count int
}

// NewCheckedPortAllocator builds the pair.
func NewCheckedPortAllocator(base uint16, count int) (*CheckedPortAllocator, error) {
	p, err := libvig.NewPortAllocator(base, count)
	if err != nil {
		return nil, err
	}
	return &CheckedPortAllocator{Impl: p, Model: make(map[uint16]bool), Base: base, Count: count}, nil
}

// Allocate checks the portsp Allocate contract.
func (c *CheckedPortAllocator) Allocate() (uint16, error) {
	q, err := c.Impl.Allocate()
	if len(c.Model) == c.Count {
		if err == nil {
			return 0, &Violation{"Allocate", "allocated from an exhausted pool"}
		}
		return 0, nil
	}
	if err != nil {
		return 0, &Violation{"Allocate", "failed though ports are free: " + err.Error()}
	}
	if c.Model[q] {
		return 0, &Violation{"Allocate", fmt.Sprintf("returned in-use port %d", q)}
	}
	if int(q) < int(c.Base) || int(q) >= int(c.Base)+c.Count {
		return 0, &Violation{"Allocate", fmt.Sprintf("port %d out of range", q)}
	}
	c.Model[q] = true
	return q, nil
}

// Release checks the portsp Release contract.
func (c *CheckedPortAllocator) Release(q uint16) error {
	err := c.Impl.Release(q)
	if !c.Model[q] {
		if err == nil {
			return &Violation{"Release", fmt.Sprintf("released free port %d", q)}
		}
		return nil
	}
	if err != nil {
		return &Violation{"Release", "failed to release allocated port: " + err.Error()}
	}
	delete(c.Model, q)
	if c.Impl.FreeCount() != c.Count-len(c.Model) {
		return &Violation{"Release", "free count diverged from model"}
	}
	return nil
}
