package contracts

import (
	"fmt"

	"vignat/internal/libvig"
)

// dmapEntry is the abstract double-map record: value plus its two keys.
type dmapEntry[K1, K2 libvig.Key] struct {
	V  int
	K1 K1
	K2 K2
}

// CheckedDoubleMap runs a concrete DoubleMap against the dmappingp
// abstract state (Fig. 8): a partial map from indices to values whose
// two key indexes are exactly the projections of the stored values.
// The value type is a (K1, K2, int) record so the checker can validate
// both key directions without knowing the NF's value semantics.
type CheckedDoubleMap[K1, K2 libvig.Key] struct {
	Impl  *libvig.DoubleMap[K1, K2, dmapEntry[K1, K2]]
	Model map[int]dmapEntry[K1, K2]
	Cap   int
}

// NewCheckedDoubleMap builds the pair.
func NewCheckedDoubleMap[K1, K2 libvig.Key](capacity int) (*CheckedDoubleMap[K1, K2], error) {
	m, err := libvig.NewDoubleMap[K1, K2, dmapEntry[K1, K2]](capacity,
		func(e *dmapEntry[K1, K2]) K1 { return e.K1 },
		func(e *dmapEntry[K1, K2]) K2 { return e.K2 })
	if err != nil {
		return nil, err
	}
	return &CheckedDoubleMap[K1, K2]{
		Impl:  m,
		Model: make(map[int]dmapEntry[K1, K2]),
		Cap:   capacity,
	}, nil
}

func (c *CheckedDoubleMap[K1, K2]) hasK1(k K1) (int, bool) {
	for i, e := range c.Model {
		if e.K1 == k {
			return i, true
		}
	}
	return 0, false
}

func (c *CheckedDoubleMap[K1, K2]) hasK2(k K2) (int, bool) {
	for i, e := range c.Model {
		if e.K2 == k {
			return i, true
		}
	}
	return 0, false
}

// Put checks the dmappingp Put contract: fresh index, fresh keys.
func (c *CheckedDoubleMap[K1, K2]) Put(i int, k1 K1, k2 K2, v int) error {
	_, busy := c.Model[i]
	_, dup1 := c.hasK1(k1)
	_, dup2 := c.hasK2(k2)
	outOfRange := i < 0 || i >= c.Cap
	err := c.Impl.Put(i, dmapEntry[K1, K2]{V: v, K1: k1, K2: k2})
	shouldFail := busy || dup1 || dup2 || outOfRange
	if shouldFail {
		if err == nil {
			return &Violation{"Put", fmt.Sprintf("accepted invalid insert at %d (busy=%v dup1=%v dup2=%v range=%v)", i, busy, dup1, dup2, outOfRange)}
		}
		return c.check("Put")
	}
	if err != nil {
		return &Violation{"Put", "rejected valid insert: " + err.Error()}
	}
	c.Model[i] = dmapEntry[K1, K2]{V: v, K1: k1, K2: k2}
	return c.check("Put")
}

// Erase checks the dmappingp Erase contract.
func (c *CheckedDoubleMap[K1, K2]) Erase(i int) error {
	_, busy := c.Model[i]
	err := c.Impl.Erase(i)
	if !busy {
		if err == nil {
			return &Violation{"Erase", fmt.Sprintf("erased free index %d", i)}
		}
		return nil
	}
	if err != nil {
		return &Violation{"Erase", "failed to erase occupied index: " + err.Error()}
	}
	delete(c.Model, i)
	return c.check("Erase")
}

// GetByFst checks the Fig. 8 post-condition for the first key index.
func (c *CheckedDoubleMap[K1, K2]) GetByFst(k K1) error {
	got, ok := c.Impl.GetByFst(k)
	want, wok := c.hasK1(k)
	if ok != wok || (ok && got != want) {
		return &Violation{"GetByFst", fmt.Sprintf("(%d,%v), model (%d,%v)", got, ok, want, wok)}
	}
	return nil
}

// GetBySnd checks the symmetric post-condition.
func (c *CheckedDoubleMap[K1, K2]) GetBySnd(k K2) error {
	got, ok := c.Impl.GetBySnd(k)
	want, wok := c.hasK2(k)
	if ok != wok || (ok && got != want) {
		return &Violation{"GetBySnd", fmt.Sprintf("(%d,%v), model (%d,%v)", got, ok, want, wok)}
	}
	return nil
}

// check validates size and the per-index store against the model.
func (c *CheckedDoubleMap[K1, K2]) check(op string) error {
	if c.Impl.Size() != len(c.Model) {
		return &Violation{op, fmt.Sprintf("size %d, model %d", c.Impl.Size(), len(c.Model))}
	}
	for i, e := range c.Model {
		got := c.Impl.Value(i)
		if got == nil {
			return &Violation{op, fmt.Sprintf("index %d missing", i)}
		}
		if got.V != e.V || got.K1 != e.K1 || got.K2 != e.K2 {
			return &Violation{op, fmt.Sprintf("index %d diverged", i)}
		}
	}
	return nil
}
