package libvig

import (
	"errors"
	"testing"
)

func TestDChainAllocateAll(t *testing.T) {
	c, err := NewDChain(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		idx, err := c.Allocate(Time(i))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if idx < 0 || idx >= 4 || seen[idx] {
			t.Fatalf("bad index %d", idx)
		}
		seen[idx] = true
	}
	if _, err := c.Allocate(10); !errors.Is(err, ErrChainFull) {
		t.Fatalf("want ErrChainFull, got %v", err)
	}
	if c.Size() != 4 {
		t.Fatalf("size %d", c.Size())
	}
}

func TestDChainExpireOrder(t *testing.T) {
	c, _ := NewDChain(4)
	a, _ := c.Allocate(10)
	b, _ := c.Allocate(20)
	d, _ := c.Allocate(30)
	_ = d
	// Rejuvenate a: order becomes b(20) d(30) a(40).
	if err := c.Rejuvenate(a, 40); err != nil {
		t.Fatal(err)
	}
	idx, ok := c.ExpireOne(25)
	if !ok || idx != b {
		t.Fatalf("expire: got %d %v, want %d", idx, ok, b)
	}
	// d(30) is next-oldest; deadline 30 is not strictly greater.
	if _, ok := c.ExpireOne(30); ok {
		t.Fatal("expired entry with timestamp == deadline")
	}
	idx, ok = c.ExpireOne(31)
	if !ok || idx != d {
		t.Fatalf("expire: got %d %v, want %d", idx, ok, d)
	}
	idx, ok = c.ExpireOne(1000)
	if !ok || idx != a {
		t.Fatalf("expire: got %d %v, want %d", idx, ok, a)
	}
	if _, ok := c.ExpireOne(1000); ok {
		t.Fatal("expired from empty chain")
	}
}

func TestDChainRejuvenateDead(t *testing.T) {
	c, _ := NewDChain(2)
	if err := c.Rejuvenate(0, 5); !errors.Is(err, ErrChainNotAlloc) {
		t.Fatalf("want ErrChainNotAlloc, got %v", err)
	}
	if err := c.Rejuvenate(7, 5); !errors.Is(err, ErrChainRange) {
		t.Fatalf("want ErrChainRange, got %v", err)
	}
}

func TestDChainTimestamp(t *testing.T) {
	c, _ := NewDChain(2)
	i, _ := c.Allocate(42)
	ts, err := c.Timestamp(i)
	if err != nil || ts != 42 {
		t.Fatalf("timestamp: %d %v", ts, err)
	}
	_ = c.Rejuvenate(i, 99)
	ts, _ = c.Timestamp(i)
	if ts != 99 {
		t.Fatalf("timestamp after rejuvenate: %d", ts)
	}
	if _, err := c.Timestamp(1); !errors.Is(err, ErrChainNotAlloc) {
		t.Fatalf("want ErrChainNotAlloc, got %v", err)
	}
}

func TestDChainFreeAndReuse(t *testing.T) {
	c, _ := NewDChain(2)
	a, _ := c.Allocate(1)
	if err := c.Free(a); err != nil {
		t.Fatal(err)
	}
	if c.IsAllocated(a) {
		t.Fatal("freed index still allocated")
	}
	if err := c.Free(a); !errors.Is(err, ErrChainNotAlloc) {
		t.Fatalf("double free: want ErrChainNotAlloc, got %v", err)
	}
	// LIFO reuse: the just-freed index comes back first.
	b, _ := c.Allocate(2)
	if b != a {
		t.Fatalf("expected LIFO reuse of %d, got %d", a, b)
	}
}

func TestDChainOldest(t *testing.T) {
	c, _ := NewDChain(3)
	if _, _, ok := c.Oldest(); ok {
		t.Fatal("empty chain has an oldest")
	}
	a, _ := c.Allocate(5)
	_, _ = c.Allocate(6)
	idx, ts, ok := c.Oldest()
	if !ok || idx != a || ts != 5 {
		t.Fatalf("oldest: %d %d %v", idx, ts, ok)
	}
}

func TestDChainAllocatedAsc(t *testing.T) {
	c, _ := NewDChain(3)
	a, _ := c.Allocate(1)
	b, _ := c.Allocate(2)
	d, _ := c.Allocate(3)
	_ = c.Rejuvenate(a, 4)
	got := c.AllocatedAsc(nil)
	want := []int{b, d, a}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

// TestDChainChurn drives a long allocate/rejuvenate/expire mix and
// checks the global invariants: sizes, uniqueness, and that expiry
// always removes the oldest.
func TestDChainChurn(t *testing.T) {
	const cap = 32
	c, _ := NewDChain(cap)
	live := map[int]Time{}
	now := Time(0)
	rng := uint64(1)
	rand := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 20000; step++ {
		now++
		switch rand(3) {
		case 0:
			idx, err := c.Allocate(now)
			if len(live) == cap {
				if err == nil {
					t.Fatal("allocated past capacity")
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if _, dup := live[idx]; dup {
				t.Fatalf("step %d: duplicate index %d", step, idx)
			}
			live[idx] = now
		case 1:
			if len(live) == 0 {
				continue
			}
			var pick int
			k := rand(len(live))
			for idx := range live {
				if k == 0 {
					pick = idx
					break
				}
				k--
			}
			if err := c.Rejuvenate(pick, now); err != nil {
				t.Fatalf("step %d: rejuvenate: %v", step, err)
			}
			live[pick] = now
		case 2:
			deadline := now - 5
			for {
				idx, ok := c.ExpireOne(deadline)
				if !ok {
					break
				}
				ts, present := live[idx]
				if !present {
					t.Fatalf("step %d: expired unknown index %d", step, idx)
				}
				if ts >= deadline {
					t.Fatalf("step %d: expired fresh index %d (ts %d, deadline %d)", step, idx, ts, deadline)
				}
				delete(live, idx)
			}
			// Nothing older than the deadline may remain.
			if _, ts, ok := c.Oldest(); ok && ts < deadline {
				t.Fatalf("step %d: stale entry survived expiry", step)
			}
		}
		if c.Size() != len(live) {
			t.Fatalf("step %d: size %d, model %d", step, c.Size(), len(live))
		}
	}
}
