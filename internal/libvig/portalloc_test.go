package libvig

import (
	"errors"
	"testing"
)

func TestPortAllocatorBasics(t *testing.T) {
	p, err := NewPortAllocator(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base() != 1000 || p.Count() != 4 || p.FreeCount() != 4 {
		t.Fatal("fresh allocator state wrong")
	}
	seen := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		q, err := p.Allocate()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if q < 1000 || q >= 1004 || seen[q] {
			t.Fatalf("bad port %d", q)
		}
		seen[q] = true
		if !p.IsAllocated(q) {
			t.Fatalf("port %d not marked allocated", q)
		}
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrNoFreePort) {
		t.Fatalf("want ErrNoFreePort, got %v", err)
	}
}

func TestPortAllocatorReleaseReuse(t *testing.T) {
	p, _ := NewPortAllocator(1, 3)
	a, _ := p.Allocate()
	if err := p.Release(a); err != nil {
		t.Fatal(err)
	}
	if p.IsAllocated(a) {
		t.Fatal("released port still allocated")
	}
	if err := p.Release(a); !errors.Is(err, ErrPortNotAlloc) {
		t.Fatalf("double release: %v", err)
	}
	// LIFO: the released port comes back first.
	b, _ := p.Allocate()
	if b != a {
		t.Fatalf("expected LIFO reuse of %d, got %d", a, b)
	}
}

func TestPortAllocatorSpecific(t *testing.T) {
	p, _ := NewPortAllocator(100, 8)
	if err := p.AllocateSpecific(105); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocateSpecific(105); !errors.Is(err, ErrPortBusy) {
		t.Fatalf("want ErrPortBusy, got %v", err)
	}
	if err := p.AllocateSpecific(99); !errors.Is(err, ErrPortRange) {
		t.Fatalf("below range: %v", err)
	}
	if err := p.AllocateSpecific(108); !errors.Is(err, ErrPortRange) {
		t.Fatalf("above range: %v", err)
	}
	// The remaining 7 ports must all still be allocatable, skipping 105.
	for i := 0; i < 7; i++ {
		q, err := p.Allocate()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if q == 105 {
			t.Fatal("port 105 handed out twice")
		}
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrNoFreePort) {
		t.Fatal("pool should be exhausted")
	}
}

func TestPortAllocatorRangeValidation(t *testing.T) {
	if _, err := NewPortAllocator(0, 0); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := NewPortAllocator(65000, 1000); !errors.Is(err, ErrPortRange) {
		t.Fatalf("overflowing range accepted: %v", err)
	}
	// Exactly fitting range is fine (1..65535).
	if _, err := NewPortAllocator(1, 65535); err != nil {
		t.Fatalf("full port space rejected: %v", err)
	}
}

func TestPortAllocatorInterleaved(t *testing.T) {
	p, _ := NewPortAllocator(1, 16)
	live := map[uint16]bool{}
	rng := uint64(7)
	rand := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 10000; step++ {
		if rand(2) == 0 && len(live) < 16 {
			q, err := p.Allocate()
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if live[q] {
				t.Fatalf("step %d: double allocation of %d", step, q)
			}
			live[q] = true
		} else if len(live) > 0 {
			var pick uint16
			k := rand(len(live))
			for q := range live {
				if k == 0 {
					pick = q
					break
				}
				k--
			}
			if err := p.Release(pick); err != nil {
				t.Fatalf("step %d: release: %v", step, err)
			}
			delete(live, pick)
		}
		if p.FreeCount() != 16-len(live) {
			t.Fatalf("step %d: free count %d, model %d", step, p.FreeCount(), 16-len(live))
		}
	}
}
