package libvig

import (
	"errors"
	"testing"
)

func TestRingBasicFIFO(t *testing.T) {
	r, err := NewRing[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Capacity() != 4 {
		t.Fatal("fresh ring state wrong")
	}
	for i := 1; i <= 4; i++ {
		if err := r.PushBack(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	for i := 1; i <= 4; i++ {
		v, err := r.PopFront()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("FIFO order broken: got %d want %d", v, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
}

func TestRingPushFullFails(t *testing.T) {
	r, _ := NewRing[int](1)
	if err := r.PushBack(1); err != nil {
		t.Fatal(err)
	}
	if err := r.PushBack(2); !errors.Is(err, ErrRingFull) {
		t.Fatalf("want ErrRingFull, got %v", err)
	}
	// The failed push must not have corrupted the ring.
	if v, _ := r.PopFront(); v != 1 {
		t.Fatalf("ring corrupted by rejected push: got %d", v)
	}
}

func TestRingPopEmptyFails(t *testing.T) {
	r, _ := NewRing[int](1)
	if _, err := r.PopFront(); !errors.Is(err, ErrRingEmpty) {
		t.Fatalf("want ErrRingEmpty, got %v", err)
	}
	if _, err := r.Front(); !errors.Is(err, ErrRingEmpty) {
		t.Fatalf("Front on empty: want ErrRingEmpty, got %v", err)
	}
}

func TestRingWraparound(t *testing.T) {
	r, _ := NewRing[int](3)
	// Drive begin around the buffer several times.
	next := 0
	popped := 0
	for cycle := 0; cycle < 10; cycle++ {
		for !r.Full() {
			if err := r.PushBack(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for !r.Empty() {
			v, err := r.PopFront()
			if err != nil {
				t.Fatal(err)
			}
			if v != popped {
				t.Fatalf("wraparound order broken: got %d want %d", v, popped)
			}
			popped++
		}
	}
}

func TestRingFront(t *testing.T) {
	r, _ := NewRing[string](2)
	_ = r.PushBack("a")
	_ = r.PushBack("b")
	v, err := r.Front()
	if err != nil || v != "a" {
		t.Fatalf("Front: %q, %v", v, err)
	}
	if r.Len() != 2 {
		t.Fatal("Front must not consume")
	}
}

func TestRingBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		if _, err := NewRing[int](c); err == nil {
			t.Fatalf("capacity %d accepted", c)
		}
	}
}

func TestRingSnapshot(t *testing.T) {
	r, _ := NewRing[int](4)
	_ = r.PushBack(1)
	_ = r.PushBack(2)
	_, _ = r.PopFront()
	_ = r.PushBack(3)
	got := r.Snapshot(nil)
	want := []int{2, 3}
	if len(got) != len(want) {
		t.Fatalf("snapshot %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v want %v", got, want)
		}
	}
}

// TestRingDoesNotAlterElements is the property the §3 discard proof
// relies on: the ring returns elements exactly as stored.
func TestRingDoesNotAlterElements(t *testing.T) {
	type pkt struct{ port uint16 }
	r, _ := NewRing[pkt](64)
	for i := 0; i < 64; i++ {
		_ = r.PushBack(pkt{port: uint16(i * 7)})
	}
	for i := 0; i < 64; i++ {
		p, err := r.PopFront()
		if err != nil {
			t.Fatal(err)
		}
		if p.port != uint16(i*7) {
			t.Fatalf("element altered: got %d want %d", p.port, i*7)
		}
	}
}
