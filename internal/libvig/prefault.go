package libvig

// prefault touches every element of a freshly made slice so the OS
// backs it with real pages at construction time. DPDK does the same by
// locking hugepages at startup: without it, the first packet to hit a
// cold region of a preallocated table pays a page fault — a multi-
// microsecond spike that would show up as NF jitter. Writing the zero
// value is not elided by the compiler and forces copy-on-write pages to
// materialize.
func prefault[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}
