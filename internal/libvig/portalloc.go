package libvig

import "errors"

// Port allocator errors.
var (
	ErrNoFreePort   = errors.New("libvig: no free port")
	ErrPortRange    = errors.New("libvig: port out of range")
	ErrPortNotAlloc = errors.New("libvig: port not allocated")
	ErrPortBusy     = errors.New("libvig: port already allocated")
)

// PortAllocator is libVig's "port allocator to keep track of allocated
// ports" (§5.1.1). It manages the external-port range [base, base+count)
// that the NAT rewrites internal flows onto. The free ports form a
// doubly-linked list over a preallocated arena, so Allocate,
// AllocateSpecific and Release are all O(1). Released ports are reused
// LIFO: the flow timeout already guarantees a quarantine period between
// uses of a port (the flow only dies Texp after its last packet), and
// LIFO keeps the allocator's working set cache-hot at any occupancy.
//
// Contract sketch:
//
//	portsp(p, F, base, count) ≡ F ⊆ [base, base+count) is the allocated
//	  set.
//	Allocate:            requires |F| < count
//	                     ensures F' = F ∪ {q} with q ∉ F; returns q
//	AllocateSpecific(q): requires q in range ∧ q ∉ F; ensures F' = F ∪ {q}
//	Release(q):          requires q ∈ F; ensures F' = F \ {q}
type PortAllocator struct {
	base  uint16
	alloc []bool
	// next/prev over offsets; slot count is the free-list sentinel.
	next  []int32
	prev  []int32
	nfree int
}

// NewPortAllocator manages count ports starting at base. base+count must
// not exceed 65536.
func NewPortAllocator(base uint16, count int) (*PortAllocator, error) {
	if count <= 0 {
		return nil, ErrBadCapacity
	}
	if int(base)+count > 1<<16 {
		return nil, ErrPortRange
	}
	p := &PortAllocator{
		base:  base,
		alloc: make([]bool, count),
		next:  make([]int32, count+1),
		prev:  make([]int32, count+1),
		nfree: count,
	}
	prefault(p.alloc)
	s := int32(count) // sentinel
	prevCell := s
	for i := int32(0); i < int32(count); i++ {
		p.next[prevCell] = i
		p.prev[i] = prevCell
		prevCell = i
	}
	p.next[prevCell] = s
	p.prev[s] = prevCell
	return p, nil
}

func (p *PortAllocator) sentinel() int32 { return int32(len(p.alloc)) }

func (p *PortAllocator) unlink(i int32) {
	p.next[p.prev[i]] = p.next[i]
	p.prev[p.next[i]] = p.prev[i]
}

func (p *PortAllocator) linkAtHead(i int32) {
	s := p.sentinel()
	n := p.next[s]
	p.next[s] = i
	p.prev[i] = s
	p.next[i] = n
	p.prev[n] = i
}

// Base returns the first managed port.
func (p *PortAllocator) Base() uint16 { return p.base }

// Count returns the number of managed ports.
func (p *PortAllocator) Count() int { return len(p.alloc) }

// FreeCount returns how many ports are currently free.
func (p *PortAllocator) FreeCount() int { return p.nfree }

// IsAllocated reports whether port q is currently allocated.
func (p *PortAllocator) IsAllocated(q uint16) bool {
	off := int(q) - int(p.base)
	return off >= 0 && off < len(p.alloc) && p.alloc[off]
}

// Allocate hands out a free port (the most recently released one).
func (p *PortAllocator) Allocate() (uint16, error) {
	s := p.sentinel()
	i := p.next[s]
	if i == s {
		return 0, ErrNoFreePort
	}
	p.unlink(i)
	p.alloc[i] = true
	p.nfree--
	return p.base + uint16(i), nil
}

// AllocateSpecific claims port q if it is free. NFs use it to honor
// endpoint-independent mappings or configured static NAT entries.
func (p *PortAllocator) AllocateSpecific(q uint16) error {
	off := int(q) - int(p.base)
	if off < 0 || off >= len(p.alloc) {
		return ErrPortRange
	}
	if p.alloc[off] {
		return ErrPortBusy
	}
	p.unlink(int32(off))
	p.alloc[off] = true
	p.nfree--
	return nil
}

// Release returns port q to the free pool (at the head, for LIFO reuse).
// Requires q allocated (checked).
func (p *PortAllocator) Release(q uint16) error {
	off := int(q) - int(p.base)
	if off < 0 || off >= len(p.alloc) {
		return ErrPortRange
	}
	if !p.alloc[off] {
		return ErrPortNotAlloc
	}
	p.alloc[off] = false
	p.linkAtHead(int32(off))
	p.nfree++
	return nil
}
