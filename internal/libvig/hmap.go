package libvig

import "errors"

// Key is the constraint for hash-map keys: comparable (Go equality is the
// key-equality predicate, as in the paper's eq_a/eq_b function pointers)
// plus a hash method (the paper's map_key_hash).
type Key interface {
	comparable
	// Hash returns a well-mixed 64-bit hash of the key. Two equal keys
	// must return equal hashes.
	Hash() uint64
}

// Map errors.
var (
	ErrMapFull     = errors.New("libvig: map full")
	ErrMapDupKey   = errors.New("libvig: key already present")
	ErrMapNoKey    = errors.New("libvig: key not present")
	ErrBadCapacity = errors.New("libvig: capacity must be positive")
)

// Map is libVig's "classic hash table" (§5.1.1): a fixed-capacity
// open-addressing map from K to a small integer value (in VigNAT the value
// is always an index into a Vector/DoubleMap). It reproduces the Vigor
// map_impl algorithm: linear probing with per-slot traversal counters
// ("chains") so that deletion needs neither tombstone rehashing nor
// backward shifting — this is the "auxiliary metadata that speeds up
// lookup" §6 mentions. The slot array holds at least twice the capacity
// (rounded to a power of two), so even a full flow table keeps probe
// sequences short — the paper's verified NAT shows only a mild latency
// up-tick when its table fills.
//
// Invariant (the heart of the paper's map contract):
//
//	chains[i] = number of stored keys whose probe path passes over slot i
//	            without residing there.
//
// A lookup can stop at the first slot whose chain counter is zero and
// does not hold the key: no stored key's probe sequence continues past
// it.
//
// Contract sketch:
//
//	mapp(m, M, cap) ≡ m represents the partial function M, |M| ≤ cap.
//	Put:   requires k ∉ dom(M) ∧ |M| < cap   ensures M' = M[k↦v]
//	Erase: requires k ∈ dom(M)               ensures M' = M \ {k}
//	Get:   ensures  result = (M(k), k ∈ dom(M)); M unchanged
type Map[K Key] struct {
	slots    []slot[K]
	mask     uint64
	capacity int
	size     int
}

// slot packs one probe target into a single cache line's worth of data:
// open addressing touches exactly one slot per probe step, which is what
// keeps the verified table's latency close to the chaining baseline.
type slot[K Key] struct {
	hash  uint64
	val   int32
	chain int32
	key   K
	busy  bool
}

// NewMap returns a map that can store up to capacity keys.
func NewMap[K Key](capacity int) (*Map[K], error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	if capacity > 1<<31-1 {
		return nil, ErrBadCapacity
	}
	nb := 1
	for nb < 2*capacity {
		nb <<= 1
	}
	slots := make([]slot[K], nb)
	prefault(slots)
	return &Map[K]{
		slots:    slots,
		mask:     uint64(nb - 1),
		capacity: capacity,
	}, nil
}

// Capacity returns the maximum number of storable keys.
func (m *Map[K]) Capacity() int { return m.capacity }

// Size returns the number of stored keys.
func (m *Map[K]) Size() int { return m.size }

// Get returns the value stored for k.
func (m *Map[K]) Get(k K) (int, bool) {
	h := k.Hash()
	idx := h & m.mask
	for i := 0; i < len(m.slots); i++ {
		s := &m.slots[idx]
		if s.busy && s.hash == h && s.key == k {
			return int(s.val), true
		}
		if s.chain == 0 {
			// No stored key probes past this slot.
			return 0, false
		}
		idx = (idx + 1) & m.mask
	}
	return 0, false
}

// Has reports whether k is present.
func (m *Map[K]) Has(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Put stores v for key k.
// Requires k not present and the map not full (checked; violations return
// ErrMapDupKey / ErrMapFull and leave the map unchanged).
func (m *Map[K]) Put(k K, v int) error {
	if m.size == m.capacity {
		return ErrMapFull
	}
	h := k.Hash()
	idx := h & m.mask
	firstFree := -1
	travel := 0 // probes past occupied-or-chained slots before firstFree
	for i := 0; i < len(m.slots); i++ {
		s := &m.slots[idx]
		if s.busy {
			if s.hash == h && s.key == k {
				return ErrMapDupKey
			}
		} else {
			if firstFree < 0 {
				firstFree = int(idx)
				travel = i
			}
			if s.chain == 0 {
				// No stored key (hence no duplicate) lies beyond.
				break
			}
		}
		idx = (idx + 1) & m.mask
	}
	if firstFree < 0 {
		return ErrMapFull // unreachable: load factor is bounded by 1/2
	}
	dst := &m.slots[firstFree]
	dst.busy = true
	dst.key = k
	dst.hash = h
	dst.val = int32(v)
	m.size++
	// Every slot probed before the resting place now has one more key
	// whose path crosses it.
	idx = h & m.mask
	for j := 0; j < travel; j++ {
		m.slots[idx].chain++
		idx = (idx + 1) & m.mask
	}
	return nil
}

// Erase removes key k.
// Requires k present (checked; returns ErrMapNoKey otherwise).
func (m *Map[K]) Erase(k K) error {
	h := k.Hash()
	idx := h & m.mask
	for i := 0; i < len(m.slots); i++ {
		s := &m.slots[idx]
		if s.busy && s.hash == h && s.key == k {
			var zero K
			s.busy = false
			s.key = zero
			m.size--
			j := h & m.mask
			for n := 0; n < i; n++ {
				m.slots[j].chain--
				j = (j + 1) & m.mask
			}
			return nil
		}
		if s.chain == 0 {
			return ErrMapNoKey
		}
		idx = (idx + 1) & m.mask
	}
	return ErrMapNoKey
}

// ForEach calls fn for every stored (key, value) pair, in unspecified
// order, until fn returns false. Intended for contract checking and tests.
func (m *Map[K]) ForEach(fn func(k K, v int) bool) {
	for i := range m.slots {
		if m.slots[i].busy {
			if !fn(m.slots[i].key, int(m.slots[i].val)) {
				return
			}
		}
	}
}
