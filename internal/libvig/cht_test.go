package libvig

import "testing"

const chtTestM = 1021 // prime, ≥100× the backend counts exercised here

// chtCounts tallies bucket ownership per backend and checks totality.
func chtCounts(t *testing.T, c *CHT) map[int]int {
	t.Helper()
	counts := map[int]int{}
	var snap []int32
	snap = c.Snapshot(snap)
	if len(snap) != c.TableSize() {
		t.Fatalf("snapshot length %d want %d", len(snap), c.TableSize())
	}
	for j, b := range snap {
		if c.Live() == 0 {
			if b != -1 {
				t.Fatalf("bucket %d owned by %d with no live backend", j, b)
			}
			continue
		}
		if b < 0 || !c.IsLive(int(b)) {
			t.Fatalf("bucket %d owned by dead backend %d", j, b)
		}
		counts[int(b)]++
	}
	return counts
}

func TestCHTValidation(t *testing.T) {
	if _, err := NewCHT(0, chtTestM); err == nil {
		t.Fatal("0 backends accepted")
	}
	if _, err := NewCHT(8, 1024); err == nil {
		t.Fatal("composite table size accepted")
	}
	if _, err := NewCHT(8, 7); err == nil {
		t.Fatal("table smaller than backend capacity accepted")
	}
	c, err := NewCHT(8, chtTestM)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBackend(8, 1); err != ErrCHTBackendRange {
		t.Fatalf("out-of-range add: %v", err)
	}
	if err := c.AddBackend(-1, 1); err != ErrCHTBackendRange {
		t.Fatalf("negative add: %v", err)
	}
	if err := c.RemoveBackend(3); err != ErrCHTBackendDead {
		t.Fatalf("dead remove: %v", err)
	}
	if err := c.AddBackend(3, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBackend(3, 42); err != ErrCHTBackendLive {
		t.Fatalf("double add: %v", err)
	}
}

func TestCHTEmptyLookup(t *testing.T) {
	c, err := NewCHT(4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(12345); ok {
		t.Fatal("empty table produced a backend")
	}
	chtCounts(t, c)
}

// TestCHTBalance checks the Maglev balance invariant after every
// membership change: each live backend owns ⌊M/N⌋ or ⌈M/N⌉ buckets.
func TestCHTBalance(t *testing.T) {
	c, err := NewCHT(16, chtTestM)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		counts := chtCounts(t, c)
		if c.Live() == 0 {
			return
		}
		lo := chtTestM / c.Live()
		hi := lo
		if chtTestM%c.Live() != 0 {
			hi++
		}
		if len(counts) != c.Live() {
			t.Fatalf("%d live backends but %d own buckets", c.Live(), len(counts))
		}
		for b, n := range counts {
			if n < lo || n > hi {
				t.Fatalf("backend %d owns %d buckets, want %d..%d (N=%d)", b, n, lo, hi, c.Live())
			}
		}
	}
	for i := 0; i < 16; i++ {
		if err := c.AddBackend(i, uint64(0x0a000001+i)); err != nil {
			t.Fatal(err)
		}
		check()
	}
	for i := 15; i >= 0; i-- {
		if err := c.RemoveBackend(i); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

// TestCHTLookupConsistency: same hash, same backend, across unrelated
// membership churn that never touches the owning backend's liveness —
// most lookups must not move (the disruption property at the lookup
// level; stickiness for tracked flows is the lb package's job).
func TestCHTDisruptionOnRemoval(t *testing.T) {
	const nBackends = 8
	c, err := NewCHT(nBackends, chtTestM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nBackends; i++ {
		if err := c.AddBackend(i, uint64(0xc0a80000+i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot(nil)
	const victim = 3
	if err := c.RemoveBackend(victim); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot(nil)

	victimBuckets, moved := 0, 0
	for j := range before {
		switch {
		case before[j] == victim:
			victimBuckets++
			if after[j] == victim {
				t.Fatalf("bucket %d still points at removed backend", j)
			}
		case after[j] != before[j]:
			moved++
		}
	}
	if victimBuckets == 0 {
		t.Fatal("victim owned no buckets before removal")
	}
	// Minimal disruption: the buckets of surviving backends mostly stay
	// put. Maglev measures <1–2% extra movement at M≥100N; allow a
	// generous 15% here so the test pins the property, not the constant.
	surviving := len(before) - victimBuckets
	if frac := float64(moved) / float64(surviving); frac > 0.15 {
		t.Fatalf("%.1f%% of surviving buckets moved on one removal", frac*100)
	}
}

// TestCHTSeedStability: a backend re-added under the same seed reclaims
// its permutation, so the table returns to exactly the pre-removal
// assignment.
func TestCHTSeedStability(t *testing.T) {
	c, err := NewCHT(8, chtTestM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.AddBackend(i, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot(nil)
	if err := c.RemoveBackend(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBackend(2, 102); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot(nil)
	for j := range before {
		if before[j] != after[j] {
			t.Fatalf("bucket %d moved %d→%d across remove+same-seed re-add", j, before[j], after[j])
		}
	}
}

func TestCHTPopulateAllocFree(t *testing.T) {
	c, err := NewCHT(8, chtTestM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.AddBackend(i, uint64(i)*7919); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(10, func() { c.populate() }); n != 0 {
		t.Fatalf("populate allocates %v times", n)
	}
	if n := testing.AllocsPerRun(10, func() { c.Lookup(123456789) }); n != 0 {
		t.Fatalf("lookup allocates %v times", n)
	}
}
