package libvig

import "errors"

// Batcher groups homogeneous items and flushes them in bursts (§5.1.1).
// The dpdk substrate uses it to assemble TX bursts; VigNAT uses it to
// amortize per-packet transmit cost exactly as the C implementation
// batches DPDK tx_burst calls.
//
// Contract sketch:
//
//	batcherp(b, S, cap) ≡ b buffers the sequence S, |S| ≤ cap.
//	Push:  requires |S| < cap    ensures S' = S ++ [v]
//	Flush: ensures the flush func received exactly S, then S' = [].
type Batcher[T any] struct {
	buf   []T
	size  int
	flush func([]T) error
}

// NewBatcher returns a batcher with the given burst capacity that delivers
// full or explicitly flushed batches to flushFn.
func NewBatcher[T any](capacity int, flushFn func([]T) error) (*Batcher[T], error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	if flushFn == nil {
		return nil, errors.New("libvig: nil flush function")
	}
	return &Batcher[T]{buf: make([]T, capacity), flush: flushFn}, nil
}

// Capacity returns the burst size.
func (b *Batcher[T]) Capacity() int { return len(b.buf) }

// Len returns the number of buffered items.
func (b *Batcher[T]) Len() int { return b.size }

// Push adds v to the batch, flushing automatically when the batch fills.
func (b *Batcher[T]) Push(v T) error {
	b.buf[b.size] = v
	b.size++
	if b.size == len(b.buf) {
		return b.Flush()
	}
	return nil
}

// Flush delivers any buffered items to the flush function and empties the
// batch. Flushing an empty batch is a no-op.
func (b *Batcher[T]) Flush() error {
	if b.size == 0 {
		return nil
	}
	n := b.size
	b.size = 0
	err := b.flush(b.buf[:n])
	var zero T
	for i := 0; i < n; i++ {
		b.buf[i] = zero
	}
	return err
}
