package libvig

import "errors"

// CHT errors.
var (
	ErrCHTBackendRange = errors.New("libvig: backend index out of range")
	ErrCHTBackendLive  = errors.New("libvig: backend already live")
	ErrCHTBackendDead  = errors.New("libvig: backend not live")
	ErrCHTTableSize    = errors.New("libvig: lookup table size must be a prime > 0")
)

// CHT is a Maglev-style consistent-hash lookup table (Eisenbud et al.,
// NSDI'16 §3.4): a fixed-size table mapping every hash bucket to one of
// the currently live backends, populated by walking each backend's own
// permutation of the buckets round-robin until the table is full.
// The permutation walk gives two properties the load balancer leans on:
//
//   - balance: after every (re)population each live backend owns either
//     ⌊M/N⌋ or ⌈M/N⌉ of the M buckets (one bucket per backend per
//     round), so no backend is hot by construction;
//   - minimal disruption: adding or removing one backend leaves the
//     vast majority of the surviving backends' buckets untouched, so
//     connections without sticky state mostly keep their backend.
//
// Lookup is one array read — O(1) on the packet path — and population
// runs only on backend membership changes (the control path). All
// memory is preallocated at construction, like every libVig structure.
//
// Contract sketch:
//
//	chtp(c, L, B, M) ≡ B ⊆ [0, cap) is the live-backend set and
//	  L : [0, M) → B is the lookup table, total whenever B ≠ ∅,
//	  with ||L⁻¹(b)| − |L⁻¹(b')|| ≤ 1 for all b, b' ∈ B.
//	AddBackend(i, s): requires i ∉ B       ensures B' = B ∪ {i}
//	RemoveBackend(i): requires i ∈ B       ensures B' = B \ {i}
//	Lookup(h):        ensures result = (L(h mod M), B ≠ ∅); no change
//
// The disruption bound is a quality property, not a safety one: it is
// measured (experiments, EXPERIMENTS.md), while balance and totality
// are checked by the unit tests after every membership change.
type CHT struct {
	table []int32 // bucket → live backend index; -1 while no backend is live
	live  []bool
	nLive int

	// Per-backend permutation parameters, derived from the seed the
	// caller registers the backend with (Maglev hashes the backend's
	// name; here the seed is typically the backend's IP).
	offset []uint32
	skip   []uint32

	// next[i] is population scratch: how far backend i's permutation
	// walk has advanced this round. Preallocated so repopulation
	// allocates nothing.
	next []uint32
}

// NewCHT returns a table able to track up to maxBackends backends over
// a lookup table of tableSize buckets. tableSize must be prime (the
// permutation step arithmetic requires it) and at least maxBackends;
// Maglev uses M ≥ 100·N so that the ±1 bucket imbalance is <1% of any
// backend's share.
func NewCHT(maxBackends, tableSize int) (*CHT, error) {
	if maxBackends <= 0 {
		return nil, ErrBadCapacity
	}
	if tableSize < maxBackends || !isPrime(tableSize) {
		return nil, ErrCHTTableSize
	}
	c := &CHT{
		table:  make([]int32, tableSize),
		live:   make([]bool, maxBackends),
		offset: make([]uint32, maxBackends),
		skip:   make([]uint32, maxBackends),
		next:   make([]uint32, maxBackends),
	}
	prefault(c.table)
	for i := range c.table {
		c.table[i] = -1
	}
	return c, nil
}

// isPrime is trial division; table sizes are configuration-scale.
func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// chtMix is the splitmix64 finalizer (same mixer as flow hashing), so a
// low-entropy seed (an IPv4 address) still yields well-spread
// permutation parameters.
func chtMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Capacity returns the maximum number of backends.
func (c *CHT) Capacity() int { return len(c.live) }

// TableSize returns the number of lookup buckets (M).
func (c *CHT) TableSize() int { return len(c.table) }

// Live returns the number of live backends.
func (c *CHT) Live() int { return c.nLive }

// IsLive reports whether backend i is live.
func (c *CHT) IsLive(i int) bool {
	return i >= 0 && i < len(c.live) && c.live[i]
}

// AddBackend marks backend i live and repopulates the table. seed names
// the backend (its IP, say): permutations derive from the seed, not the
// index, so a backend re-added under the same name reclaims (almost)
// the same buckets while a different backend reusing the index does
// not. Requires i in range and not live (checked).
func (c *CHT) AddBackend(i int, seed uint64) error {
	if i < 0 || i >= len(c.live) {
		return ErrCHTBackendRange
	}
	if c.live[i] {
		return ErrCHTBackendLive
	}
	m := uint64(len(c.table))
	c.offset[i] = uint32(chtMix(seed) % m)
	c.skip[i] = uint32(chtMix(seed^0x9e3779b97f4a7c15)%(m-1)) + 1
	c.live[i] = true
	c.nLive++
	c.populate()
	return nil
}

// RemoveBackend marks backend i dead and repopulates the table, so its
// buckets redistribute over the survivors. Requires i live (checked).
func (c *CHT) RemoveBackend(i int) error {
	if i < 0 || i >= len(c.live) {
		return ErrCHTBackendRange
	}
	if !c.live[i] {
		return ErrCHTBackendDead
	}
	c.live[i] = false
	c.nLive--
	c.populate()
	return nil
}

// Lookup returns the backend owning hash h. The second result is false
// only when no backend is live. O(1): one modulo and one array read.
func (c *CHT) Lookup(h uint64) (int, bool) {
	b := c.table[h%uint64(len(c.table))]
	if b < 0 {
		return 0, false
	}
	return int(b), true
}

// Snapshot appends the current bucket assignment to dst and returns it
// (disruption measurements compare snapshots across membership
// changes).
func (c *CHT) Snapshot(dst []int32) []int32 {
	return append(dst, c.table...)
}

// populate rebuilds the lookup table from the live set: each live
// backend claims the next unclaimed bucket along its permutation, round
// robin, until every bucket is owned (Maglev's Fig. 3 population
// algorithm). With no live backends every bucket resets to -1.
func (c *CHT) populate() {
	for j := range c.table {
		c.table[j] = -1
	}
	if c.nLive == 0 {
		return
	}
	for i := range c.next {
		c.next[i] = 0
	}
	m := uint64(len(c.table))
	perm := func(i int) uint64 {
		return (uint64(c.offset[i]) + uint64(c.next[i])*uint64(c.skip[i])) % m
	}
	filled := 0
	for {
		for i := range c.live {
			if !c.live[i] {
				continue
			}
			// Walk backend i's permutation to its next free bucket.
			// Each backend visits every bucket exactly once over m
			// steps (skip is coprime to the prime m), so the walk
			// terminates.
			b := perm(i)
			for c.table[b] >= 0 {
				c.next[i]++
				b = perm(i)
			}
			c.table[b] = int32(i)
			c.next[i]++
			filled++
			if filled == len(c.table) {
				return
			}
		}
	}
}
