package libvig

import "errors"

// DoubleMap errors.
var (
	ErrDMapIndexBusy = errors.New("libvig: index already occupied")
	ErrDMapIndexFree = errors.New("libvig: index not occupied")
)

// DoubleMap is libVig's flow table substrate (§5.1.1, Fig. 8): a
// fixed-capacity store of values addressable by *two* independent keys.
// VigNAT stores each flow once, reachable both by its internal-side flow
// ID (key A) and by its external-side flow ID (key B).
//
// Indices are provided by the caller (in VigNAT, by a DChain), so that the
// same index identifies a flow in the DoubleMap, the DChain, and the port
// allocator — this is the composition the paper's flow table uses.
//
// Contract sketch (cf. Fig. 8's dmappingp):
//
//	dmapp(m, M, cap) ≡ M : index ⇀ V with |dom M| ≤ cap, and the two key
//	  maps are exactly { fk1(v) ↦ i } and { fk2(v) ↦ i } for (i,v) ∈ M.
//	Put(i,v):   requires i ∉ dom M ∧ fk1(v), fk2(v) fresh
//	            ensures  M' = M[i↦v]
//	Erase(i):   requires i ∈ dom M    ensures M' = M \ {i}
//	GetByFst(k): ensures result = (i, true) iff ∃(i,v)∈M. fk1(v)=k
//	GetBySnd(k): symmetric for fk2. M never changes on gets.
type DoubleMap[K1 Key, K2 Key, V any] struct {
	byFst *Map[K1]
	bySnd *Map[K2]
	vals  []V
	busy  []bool
	fk1   func(*V) K1
	fk2   func(*V) K2
	size  int
}

// NewDoubleMap returns a double-keyed map of the given capacity. fk1 and
// fk2 extract the two keys from a stored value; they must be pure.
func NewDoubleMap[K1 Key, K2 Key, V any](capacity int, fk1 func(*V) K1, fk2 func(*V) K2) (*DoubleMap[K1, K2, V], error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	if fk1 == nil || fk2 == nil {
		return nil, errors.New("libvig: nil key extractor")
	}
	a, err := NewMap[K1](capacity)
	if err != nil {
		return nil, err
	}
	b, err := NewMap[K2](capacity)
	if err != nil {
		return nil, err
	}
	vals := make([]V, capacity)
	busy := make([]bool, capacity)
	prefault(vals)
	prefault(busy)
	return &DoubleMap[K1, K2, V]{
		byFst: a,
		bySnd: b,
		vals:  vals,
		busy:  busy,
		fk1:   fk1,
		fk2:   fk2,
	}, nil
}

// Capacity returns the fixed capacity.
func (m *DoubleMap[K1, K2, V]) Capacity() int { return len(m.vals) }

// Size returns the number of stored values.
func (m *DoubleMap[K1, K2, V]) Size() int { return m.size }

// GetByFst returns the index of the value whose first key equals k.
// This is the paper's dmap_get_by_first_key (Fig. 8).
func (m *DoubleMap[K1, K2, V]) GetByFst(k K1) (int, bool) {
	return m.byFst.Get(k)
}

// GetBySnd returns the index of the value whose second key equals k.
func (m *DoubleMap[K1, K2, V]) GetBySnd(k K2) (int, bool) {
	return m.bySnd.Get(k)
}

// Value returns a pointer to the value stored at index i. The pointee is
// owned by the DoubleMap; per the libVig pointer discipline (§5.1.2) the
// caller may read and write the value but must not retain the pointer
// across an Erase of i.
// Requires i occupied (checked; returns nil otherwise).
func (m *DoubleMap[K1, K2, V]) Value(i int) *V {
	if i < 0 || i >= len(m.vals) || !m.busy[i] {
		return nil
	}
	return &m.vals[i]
}

// Put stores v at index i and indexes it under both keys.
// Requires: i in range and free, both keys absent. All checked; on error
// the map is unchanged.
func (m *DoubleMap[K1, K2, V]) Put(i int, v V) error {
	if i < 0 || i >= len(m.vals) {
		return ErrChainRange
	}
	if m.busy[i] {
		return ErrDMapIndexBusy
	}
	// Stage the value in its (preallocated) cell before indexing, so the
	// key extractors see the stored copy — keeps the packet path free of
	// heap allocation (passing &v to a function pointer would force v to
	// escape).
	m.vals[i] = v
	k1, k2 := m.fk1(&m.vals[i]), m.fk2(&m.vals[i])
	if err := m.byFst.Put(k1, i); err != nil {
		var zero V
		m.vals[i] = zero
		return err
	}
	if err := m.bySnd.Put(k2, i); err != nil {
		// Roll back so a duplicate second key cannot corrupt the map.
		_ = m.byFst.Erase(k1)
		var zero V
		m.vals[i] = zero
		return err
	}
	m.busy[i] = true
	m.size++
	return nil
}

// Erase removes the value at index i from the store and from both key
// maps. Requires i occupied (checked).
func (m *DoubleMap[K1, K2, V]) Erase(i int) error {
	if i < 0 || i >= len(m.vals) {
		return ErrChainRange
	}
	if !m.busy[i] {
		return ErrDMapIndexFree
	}
	v := &m.vals[i]
	if err := m.byFst.Erase(m.fk1(v)); err != nil {
		return err
	}
	if err := m.bySnd.Erase(m.fk2(v)); err != nil {
		return err
	}
	var zero V
	m.vals[i] = zero
	m.busy[i] = false
	m.size--
	return nil
}

// Occupied reports whether index i holds a value.
func (m *DoubleMap[K1, K2, V]) Occupied(i int) bool {
	return i >= 0 && i < len(m.vals) && m.busy[i]
}

// ForEach calls fn for every (index, value) pair until fn returns false.
// For contract checking and tests.
func (m *DoubleMap[K1, K2, V]) ForEach(fn func(i int, v *V) bool) {
	for i := range m.vals {
		if m.busy[i] {
			if !fn(i, &m.vals[i]) {
				return
			}
		}
	}
}
