package libvig

import (
	"errors"
	"testing"
	"time"
)

// --- Vector ---

func TestVectorBorrowReturn(t *testing.T) {
	v, err := NewVector[int](4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.Borrow(2)
	if err != nil {
		t.Fatal(err)
	}
	*p = 42
	if v.BorrowedCount() != 1 {
		t.Fatalf("borrowed count %d", v.BorrowedCount())
	}
	if _, err := v.Borrow(2); err == nil {
		t.Fatal("double borrow accepted")
	}
	if err := v.Return(2); err != nil {
		t.Fatal(err)
	}
	if err := v.Return(2); err == nil {
		t.Fatal("double return accepted")
	}
	got, err := v.Get(2)
	if err != nil || got != 42 {
		t.Fatalf("Get: %d %v", got, err)
	}
}

func TestVectorSetWhileBorrowed(t *testing.T) {
	v, _ := NewVector[int](2)
	_, _ = v.Borrow(0)
	if err := v.Set(0, 1); err == nil {
		t.Fatal("Set on borrowed cell accepted")
	}
	_ = v.Return(0)
	if err := v.Set(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRange(t *testing.T) {
	v, _ := NewVector[int](2)
	if _, err := v.Borrow(-1); !errors.Is(err, ErrVectorRange) {
		t.Fatal("negative index accepted")
	}
	if _, err := v.Get(2); !errors.Is(err, ErrVectorRange) {
		t.Fatal("out-of-range Get accepted")
	}
	if err := v.Return(5); !errors.Is(err, ErrVectorRange) {
		t.Fatal("out-of-range Return accepted")
	}
}

func TestVectorInit(t *testing.T) {
	v, _ := NewVectorInit(4, func(i int) int { return i * i })
	for i := 0; i < 4; i++ {
		got, _ := v.Get(i)
		if got != i*i {
			t.Fatalf("cell %d = %d", i, got)
		}
	}
}

// --- Batcher ---

func TestBatcherAutoFlush(t *testing.T) {
	var batches [][]int
	b, err := NewBatcher[int](3, func(items []int) error {
		cp := append([]int(nil), items...)
		batches = append(batches, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := b.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if len(batches) != 2 {
		t.Fatalf("auto-flushes: %d", len(batches))
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 || len(batches[2]) != 1 || batches[2][0] != 7 {
		t.Fatalf("final flush wrong: %v", batches)
	}
	// Flushing empty is a no-op.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatal("empty flush produced a batch")
	}
}

func TestBatcherOrderPreserved(t *testing.T) {
	var got []int
	b, _ := NewBatcher[int](4, func(items []int) error {
		got = append(got, items...)
		return nil
	})
	for i := 0; i < 10; i++ {
		_ = b.Push(i)
	}
	_ = b.Flush()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestBatcherValidation(t *testing.T) {
	if _, err := NewBatcher[int](0, func([]int) error { return nil }); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewBatcher[int](1, nil); err == nil {
		t.Fatal("nil flush accepted")
	}
}

// --- Expirator ---

func TestExpireItems(t *testing.T) {
	c, _ := NewDChain(8)
	erased := []int{}
	eraser := IndexEraserFunc(func(i int) error {
		erased = append(erased, i)
		return nil
	})
	a, _ := c.Allocate(10)
	b, _ := c.Allocate(20)
	d, _ := c.Allocate(30)
	n, err := ExpireItems(c, 25, eraser)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("expired %d, want 2", n)
	}
	if len(erased) != 2 || erased[0] != a || erased[1] != b {
		t.Fatalf("erased %v, want [%d %d] in age order", erased, a, b)
	}
	if !c.IsAllocated(d) {
		t.Fatal("fresh index expired")
	}
}

func TestExpireItemsMultipleErasers(t *testing.T) {
	c, _ := NewDChain(4)
	_, _ = c.Allocate(1)
	calls := [2]int{}
	e0 := IndexEraserFunc(func(int) error { calls[0]++; return nil })
	e1 := IndexEraserFunc(func(int) error { calls[1]++; return nil })
	if _, err := ExpireItems(c, 100, e0, e1); err != nil {
		t.Fatal(err)
	}
	if calls[0] != 1 || calls[1] != 1 {
		t.Fatalf("eraser calls %v", calls)
	}
}

func TestExpireItemsEraserError(t *testing.T) {
	c, _ := NewDChain(4)
	_, _ = c.Allocate(1)
	boom := errors.New("boom")
	_, err := ExpireItems(c, 100, IndexEraserFunc(func(int) error { return boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

// --- Clocks ---

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(100)
	if c.Now() != 100 {
		t.Fatal("start time wrong")
	}
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatal("advance wrong")
	}
	c.Advance(-10) // ignored
	if c.Now() != 150 {
		t.Fatal("negative advance moved time")
	}
	c.Set(120) // backwards jump ignored
	if c.Now() != 150 {
		t.Fatal("Set moved time backwards")
	}
	c.Set(200)
	if c.Now() != 200 {
		t.Fatal("Set forward failed")
	}
}

func TestSystemClockMonotonic(t *testing.T) {
	c := NewSystemClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("system clock not monotonic: %d then %d", a, b)
	}
}
