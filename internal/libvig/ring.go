package libvig

import "errors"

// Ring errors. Callers that honour the contracts (check Full/Empty before
// Push/Pop) never observe them; they exist so misuse is loud, not corrupting.
var (
	ErrRingFull  = errors.New("libvig: ring full")
	ErrRingEmpty = errors.New("libvig: ring empty")
)

// Ring is the bounded FIFO of §3 (Fig. 1): the discard NF uses it to absorb
// bursts, and the dpdk substrate uses it for port RX/TX queues.
//
// Contract sketch (the executable analogue of Fig. 3's separation-logic
// contract):
//
//	ringp(r, lst, cap) ≡ r holds exactly the sequence lst, len(lst) ≤ cap.
//
//	PushBack:  requires len(lst) < cap        ensures lst' = lst ++ [v]
//	PopFront:  requires lst ≠ nil             ensures lst' = tail(lst),
//	                                          returned v = head(lst)
//
// The ring never alters stored elements, which is the property the discard
// proof relies on ("the ring never alters the stored packets", §3).
type Ring[T any] struct {
	buf   []T
	begin int // index of the oldest element
	size  int // number of stored elements
}

// NewRing returns a ring with the given capacity. Capacity must be > 0.
func NewRing[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 {
		return nil, errors.New("libvig: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}, nil
}

// Capacity returns the fixed capacity of the ring.
func (r *Ring[T]) Capacity() int { return len(r.buf) }

// Len returns the number of stored elements.
func (r *Ring[T]) Len() int { return r.size }

// Full reports whether the ring holds Capacity() elements.
func (r *Ring[T]) Full() bool { return r.size == len(r.buf) }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.size == 0 }

// PushBack appends v to the back of the ring.
// Requires !Full(); returns ErrRingFull otherwise, leaving the ring intact.
func (r *Ring[T]) PushBack(v T) error {
	if r.Full() {
		return ErrRingFull
	}
	idx := r.begin + r.size
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	r.buf[idx] = v
	r.size++
	return nil
}

// PopFront removes and returns the element at the front of the ring.
// Requires !Empty(); returns ErrRingEmpty otherwise.
func (r *Ring[T]) PopFront() (T, error) {
	var zero T
	if r.Empty() {
		return zero, ErrRingEmpty
	}
	v := r.buf[r.begin]
	r.buf[r.begin] = zero // release any references for GC
	r.begin++
	if r.begin >= len(r.buf) {
		r.begin = 0
	}
	r.size--
	return v, nil
}

// Front returns the element at the front without removing it.
// Requires !Empty(); returns ErrRingEmpty otherwise.
func (r *Ring[T]) Front() (T, error) {
	var zero T
	if r.Empty() {
		return zero, ErrRingEmpty
	}
	return r.buf[r.begin], nil
}

// Snapshot appends the ring's contents, front to back, to dst and returns
// the extended slice. It is intended for tests and contract checking, not
// for the packet path.
func (r *Ring[T]) Snapshot(dst []T) []T {
	for i := 0; i < r.size; i++ {
		idx := r.begin + i
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		dst = append(dst, r.buf[idx])
	}
	return dst
}
