package libvig

import "errors"

// ErrVectorRange reports an out-of-range vector index.
var ErrVectorRange = errors.New("libvig: vector index out of range")

// Vector is libVig's preallocated value vector (§5.1.1): fixed capacity,
// borrow/return access. Borrowing hands the caller a pointer to the cell;
// per the libVig ownership discipline the caller must Return it before the
// end of the loop iteration — the proofcheck package enforces this for the
// verified NF, and the vector itself tracks borrow state so that misuse is
// detectable in checked runs.
//
// Contract sketch:
//
//	vectorp(v, S, cap) ≡ v holds the sequence S of cap cells.
//	Borrow(i): requires 0 ≤ i < cap ∧ ¬borrowed(i)
//	           ensures caller owns cell i
//	Return(i): requires borrowed(i); ownership reverts to the vector
type Vector[V any] struct {
	cells    []V
	borrowed []bool
	nborrow  int
}

// NewVector returns a vector with capacity cells, each zero-initialized.
func NewVector[V any](capacity int) (*Vector[V], error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	return &Vector[V]{
		cells:    make([]V, capacity),
		borrowed: make([]bool, capacity),
	}, nil
}

// NewVectorInit returns a vector with every cell initialized by init.
func NewVectorInit[V any](capacity int, init func(i int) V) (*Vector[V], error) {
	v, err := NewVector[V](capacity)
	if err != nil {
		return nil, err
	}
	for i := range v.cells {
		v.cells[i] = init(i)
	}
	return v, nil
}

// Capacity returns the number of cells.
func (v *Vector[V]) Capacity() int { return len(v.cells) }

// BorrowedCount returns how many cells are currently borrowed; it must be
// zero at the end of every NF loop iteration (leak check).
func (v *Vector[V]) BorrowedCount() int { return v.nborrow }

// Borrow hands out a pointer to cell i.
// Requires i in range and not already borrowed (checked).
func (v *Vector[V]) Borrow(i int) (*V, error) {
	if i < 0 || i >= len(v.cells) {
		return nil, ErrVectorRange
	}
	if v.borrowed[i] {
		return nil, errors.New("libvig: cell already borrowed")
	}
	v.borrowed[i] = true
	v.nborrow++
	return &v.cells[i], nil
}

// Return gives cell i back to the vector.
// Requires i borrowed (checked).
func (v *Vector[V]) Return(i int) error {
	if i < 0 || i >= len(v.cells) {
		return ErrVectorRange
	}
	if !v.borrowed[i] {
		return errors.New("libvig: cell not borrowed")
	}
	v.borrowed[i] = false
	v.nborrow--
	return nil
}

// Get copies the value of cell i without borrowing.
func (v *Vector[V]) Get(i int) (V, error) {
	var zero V
	if i < 0 || i >= len(v.cells) {
		return zero, ErrVectorRange
	}
	return v.cells[i], nil
}

// Set overwrites cell i without borrowing.
// Requires i not borrowed (checked), so a raw Set can never race a
// borrowed pointer.
func (v *Vector[V]) Set(i int, val V) error {
	if i < 0 || i >= len(v.cells) {
		return ErrVectorRange
	}
	if v.borrowed[i] {
		return errors.New("libvig: cell is borrowed")
	}
	v.cells[i] = val
	return nil
}
