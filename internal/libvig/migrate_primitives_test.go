package libvig

import "testing"

// TestTokenBucketResizeClampLaw pins Resize's mid-refill contract: the
// elapsed time before the resize is settled at the OLD rate (never
// re-priced), levels are then clamped to the NEW burst, and time after
// the resize accrues at the NEW rate.
func TestTokenBucketResizeClampLaw(t *testing.T) {
	const sec = int64(1_000_000_000)
	tb := newTB(t, 2, 100, 1000) // 100 B/s, 1000 B deep
	for i := 0; i < 2; i++ {
		if err := tb.Fill(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !tb.Charge(0, 1000, 0) {
		t.Fatal("full bucket refused its burst")
	}

	// 5 s later, shallower and slower: 10 B/s, 300 B.
	if err := tb.Resize(10, 300, Time(5*sec)); err != nil {
		t.Fatal(err)
	}
	// Bucket 0 earned 100 B/s × 5 s = 500 B under the old terms, then
	// forfeits down to the new 300 B cap. Settling at the new rate
	// instead would leave 50 B — the re-pricing bug this test exists
	// to catch.
	if lvl, err := tb.LevelUnits(0); err != nil || lvl != 300*tokenUnitsPerByte {
		t.Fatalf("bucket 0 after resize: %d units, %v; want 300 B settled at the old rate then clamped", lvl, err)
	}
	// Bucket 1 sat full at 1000 B and forfeits everything above the cap.
	if lvl, err := tb.LevelUnits(1); err != nil || lvl != 300*tokenUnitsPerByte {
		t.Fatalf("bucket 1 after resize: %d units, %v; want clamp to the new burst", lvl, err)
	}

	// Time after the resize is priced at the new rate: drain to 50 B,
	// then 10 s at 10 B/s buys exactly 100 B more. The old rate would
	// hit the cap.
	if !tb.Charge(0, 250, Time(5*sec)) {
		t.Fatal("clamped bucket refused a conforming draw")
	}
	if lvl, err := tb.Level(0, Time(15*sec)); err != nil || lvl != 150 {
		t.Fatalf("bucket 0 at t=15s: %d B, %v; want 50 + 10 B/s × 10 s = 150", lvl, err)
	}

	// Deepening keeps the level and earns the headroom only through
	// future refills.
	if err := tb.Resize(100, 2000, Time(15*sec)); err != nil {
		t.Fatal(err)
	}
	if lvl, err := tb.LevelUnits(0); err != nil || lvl != 150*tokenUnitsPerByte {
		t.Fatalf("deepening moved the level: %d units, %v", lvl, err)
	}
	if lvl, err := tb.Level(0, Time(16*sec)); err != nil || lvl != 250 {
		t.Fatalf("bucket 0 at t=16s: %d B, %v; want 150 + 100", lvl, err)
	}

	// The validation matches the constructor's.
	if err := tb.Resize(0, 300, Time(16*sec)); err != ErrBadRate {
		t.Fatalf("zero rate: %v", err)
	}
	if err := tb.Resize(100, 0, Time(16*sec)); err != ErrBadBurst {
		t.Fatalf("zero burst: %v", err)
	}
}

// TestTokenBucketRestoreClamps pins Restore's migration contract: the
// captured level lands verbatim when it fits and is clamped into
// [0, burst] when the destination's parameters differ.
func TestTokenBucketRestoreClamps(t *testing.T) {
	tb := newTB(t, 2, 100, 1000)
	if err := tb.Restore(0, 400*tokenUnitsPerByte, 7); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := tb.LevelUnits(0); lvl != 400*tokenUnitsPerByte {
		t.Fatalf("restore moved a fitting level: %d", lvl)
	}
	if last, _ := tb.LastRefill(0); last != 7 {
		t.Fatalf("restore lost the refill clock: %d", last)
	}
	if err := tb.Restore(1, 5000*tokenUnitsPerByte, 7); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := tb.LevelUnits(1); lvl != 1000*tokenUnitsPerByte {
		t.Fatalf("oversized restore not clamped to burst: %d", lvl)
	}
	if err := tb.Restore(0, -1, 7); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := tb.LevelUnits(0); lvl != 0 {
		t.Fatalf("negative restore not clamped to zero: %d", lvl)
	}
	if err := tb.Restore(2, 0, 0); err != ErrBucketRange {
		t.Fatalf("out-of-range restore: %v", err)
	}
}

// TestDChainAllocateIndex pins the restore-side allocator: a specific
// free index is taken with its original stamp, a busy or out-of-range
// index is refused, and the expiry order interleaves restored and
// normally allocated indices by stamp.
func TestDChainAllocateIndex(t *testing.T) {
	c, err := NewDChain(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AllocateIndex(2, 10); err != nil {
		t.Fatal(err)
	}
	if !c.IsAllocated(2) || c.Size() != 1 {
		t.Fatalf("index 2 not allocated (size %d)", c.Size())
	}
	if ts, err := c.Timestamp(2); err != nil || ts != 10 {
		t.Fatalf("timestamp %d, %v; want the restored stamp 10", ts, err)
	}
	if err := c.AllocateIndex(2, 20); err != ErrChainBusy {
		t.Fatalf("double allocate: %v, want ErrChainBusy", err)
	}
	if err := c.AllocateIndex(4, 0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	// Stamp-ordered restore then a fresh Allocate: expiry walks 10, 20,
	// 30 regardless of how each index entered the chain.
	if err := c.AllocateIndex(0, 20); err != nil {
		t.Fatal(err)
	}
	if i, err := c.Allocate(30); err != nil || i == 0 || i == 2 {
		t.Fatalf("fresh allocate: %d, %v", i, err)
	}
	want := []int{2, 0}
	for _, w := range want {
		if i, ok := c.ExpireOne(25); !ok || i != w {
			t.Fatalf("expiry order: got %d, want %d", i, w)
		}
	}
	if _, ok := c.ExpireOne(25); ok {
		t.Fatal("expired the young index")
	}
}
