package libvig

import "errors"

// TokenBucket errors.
var (
	ErrBucketRange = errors.New("libvig: bucket index out of range")
	ErrBadRate     = errors.New("libvig: rate must be in (0, MaxRateBytesPerSec]")
	ErrBadBurst    = errors.New("libvig: burst must be in (0, MaxBurstBytes]")
)

// MaxBurstBytes bounds the per-bucket depth so that the scaled level
// arithmetic below can never overflow int64 (burst·1e9 must fit).
const MaxBurstBytes = int64(1) << 33 // 8 GiB

// MaxRateBytesPerSec bounds the refill rate (≈1.1 TB/s — far past any
// NIC) so the fill-time ceiling division can never overflow.
const MaxRateBytesPerSec = int64(1) << 40

// tokenUnitsPerByte is the internal fixed-point scale: bucket levels are
// kept in units of 1e-9 bytes. The scale is chosen so that a rate of R
// bytes/second is exactly R units per nanosecond — refill arithmetic is
// then a single multiplication with no rounding, and the "tokens =
// min(burst, tokens + rate·Δt)" contract holds as an identity over the
// integers rather than as an approximation that leaks fractional tokens
// on every refill (the drift the naive bytes-granularity formula has).
const tokenUnitsPerByte = int64(1_000_000_000)

// TokenBucket is libVig's token-bucket vector: a preallocated array of
// per-subscriber rate-limiter buckets sharing one (rate, burst)
// configuration — the policer's "difficult state" in the same sense the
// flow table is the NAT's. All memory is allocated at construction; the
// packet path performs no allocation and no per-tick timer work: refill
// is lazy, computed from the elapsed time on each access (the Vigor
// policer's dynamic-value discipline).
//
// Contract sketch (per bucket i, level in bytes):
//
//	bucketp(b, i, L, t) ≡ bucket i holds L tokens as of time t,
//	                      0 ≤ L ≤ burst.
//	Fill(i, now):    ensures bucketp(b, i, burst, now)
//	Charge(i, n, now): with L' = min(burst, L + rate·(now−t)):
//	    n ≤ L' : ensures bucketp(b, i, L'−n, now); returns true
//	    n > L' : ensures bucketp(b, i, L',   now); returns false
//
// Time never runs backwards inside a bucket: a Charge at now < t (clock
// regression across CPUs, or a caller replaying stale timestamps)
// refills nothing and leaves the bucket's clock at t, so a regression
// can never mint tokens.
type TokenBucket struct {
	rate       int64 // bytes/second == level units per nanosecond
	burstUnits int64
	levels     []int64
	last       []Time
}

// NewTokenBucket returns a vector of capacity buckets, each refilling at
// rate bytes/second up to a depth of burst bytes. Every bucket starts
// empty with a zero timestamp; callers Fill a bucket when they bind it
// to a subscriber (a fresh subscriber starts with a full burst).
func NewTokenBucket(capacity int, rate, burst int64) (*TokenBucket, error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	if rate <= 0 || rate > MaxRateBytesPerSec {
		return nil, ErrBadRate
	}
	if burst <= 0 || burst > MaxBurstBytes {
		return nil, ErrBadBurst
	}
	tb := &TokenBucket{
		rate:       rate,
		burstUnits: burst * tokenUnitsPerByte,
		levels:     make([]int64, capacity),
		last:       make([]Time, capacity),
	}
	prefault(tb.levels)
	prefault(tb.last)
	return tb, nil
}

// Capacity returns the number of buckets.
func (tb *TokenBucket) Capacity() int { return len(tb.levels) }

// Rate returns the refill rate in bytes/second.
func (tb *TokenBucket) Rate() int64 { return tb.rate }

// Burst returns the bucket depth in bytes.
func (tb *TokenBucket) Burst() int64 { return tb.burstUnits / tokenUnitsPerByte }

// Fill resets bucket i to a full burst as of now — the bind-time
// initialization for a freshly allocated subscriber slot. Indices come
// from a DChain, so a reused slot's stale level is always overwritten
// before it can leak budget across subscribers.
// Requires i in range (checked).
func (tb *TokenBucket) Fill(i int, now Time) error {
	if i < 0 || i >= len(tb.levels) {
		return ErrBucketRange
	}
	tb.levels[i] = tb.burstUnits
	tb.last[i] = now
	return nil
}

// refill advances bucket i to now: level' = min(burst, level + rate·Δt),
// computed without overflow. If Δt·rate would reach the cap the level is
// clamped directly; otherwise Δt·rate < burstUnits − level, so the
// product fits. Δt ≤ 0 (clock regression) refills nothing and leaves the
// bucket clock where it was.
func (tb *TokenBucket) refill(i int, now Time) {
	dt := now - tb.last[i]
	if dt <= 0 {
		return
	}
	missing := tb.burstUnits - tb.levels[i]
	// ceil(missing/rate) nanoseconds fill the bucket completely.
	if fill := (missing + tb.rate - 1) / tb.rate; dt >= fill {
		tb.levels[i] = tb.burstUnits
	} else {
		tb.levels[i] += dt * tb.rate
	}
	tb.last[i] = now
}

// Charge refills bucket i to now, then attempts to draw bytes from it.
// A conforming draw (bytes ≤ refilled level) consumes and returns true;
// a non-conforming one consumes nothing and returns false — the packet
// is dropped, the budget is not. bytes < 0 is rejected as false without
// touching the bucket's level, and bytes > MaxBurstBytes is denied
// before scaling: such a draw can never conform (no bucket is that
// deep), and scaling it would overflow the fixed point and mint tokens.
// Requires i in range (checked; out-of-range returns false).
func (tb *TokenBucket) Charge(i int, bytes int, now Time) bool {
	if i < 0 || i >= len(tb.levels) || bytes < 0 || int64(bytes) > MaxBurstBytes {
		return false
	}
	tb.refill(i, now)
	cost := int64(bytes) * tokenUnitsPerByte
	if cost > tb.levels[i] {
		return false
	}
	tb.levels[i] -= cost
	return true
}

// Resize changes the vector's shared (rate, burst) configuration live,
// preserving the clamp law mid-refill: every bucket is first refilled
// to now at the OLD rate (so no elapsed time is ever re-priced at the
// new rate — the budget already earned is settled before the terms
// change), then its level is clamped to the NEW burst. A deepened
// bucket keeps its level and earns the extra headroom only through
// future refills; a shallowed one forfeits tokens above the new cap
// immediately, exactly as if it had always been that deep. The new
// parameters are validated like NewTokenBucket's.
func (tb *TokenBucket) Resize(rate, burst int64, now Time) error {
	if rate <= 0 || rate > MaxRateBytesPerSec {
		return ErrBadRate
	}
	if burst <= 0 || burst > MaxBurstBytes {
		return ErrBadBurst
	}
	for i := range tb.levels {
		tb.refill(i, now)
	}
	tb.rate = rate
	tb.burstUnits = burst * tokenUnitsPerByte
	for i := range tb.levels {
		if tb.levels[i] > tb.burstUnits {
			tb.levels[i] = tb.burstUnits
		}
	}
	return nil
}

// Restore overwrites bucket i with a previously captured (LevelUnits,
// LastRefill) pair — the restore half of shard migration. The level is
// clamped into [0, burstUnits] so a snapshot taken under different
// parameters can never violate the bucket invariant.
// Requires i in range (checked).
func (tb *TokenBucket) Restore(i int, levelUnits int64, last Time) error {
	if i < 0 || i >= len(tb.levels) {
		return ErrBucketRange
	}
	if levelUnits < 0 {
		levelUnits = 0
	}
	if levelUnits > tb.burstUnits {
		levelUnits = tb.burstUnits
	}
	tb.levels[i] = levelUnits
	tb.last[i] = last
	return nil
}

// Level returns bucket i's available tokens in whole bytes after a
// refill to now (the refill is applied — Level is an access like any
// other). Requires i in range (checked).
func (tb *TokenBucket) Level(i int, now Time) (int64, error) {
	if i < 0 || i >= len(tb.levels) {
		return 0, ErrBucketRange
	}
	tb.refill(i, now)
	return tb.levels[i] / tokenUnitsPerByte, nil
}

// LevelUnits returns bucket i's raw fixed-point level without refilling
// — the contracts package reads it to compare against the abstract
// model. Requires i in range (checked).
func (tb *TokenBucket) LevelUnits(i int) (int64, error) {
	if i < 0 || i >= len(tb.levels) {
		return 0, ErrBucketRange
	}
	return tb.levels[i], nil
}

// LastRefill returns bucket i's clock without refilling.
// Requires i in range (checked).
func (tb *TokenBucket) LastRefill(i int) (Time, error) {
	if i < 0 || i >= len(tb.levels) {
		return 0, ErrBucketRange
	}
	return tb.last[i], nil
}
