package libvig

import (
	"errors"
	"testing"
)

// pairVal is a two-key test value.
type pairVal struct {
	a, b tKey
	data int
}

func newTestDMap(t *testing.T, cap int) *DoubleMap[tKey, tKey, pairVal] {
	t.Helper()
	m, err := NewDoubleMap[tKey, tKey, pairVal](cap,
		func(v *pairVal) tKey { return v.a },
		func(v *pairVal) tKey { return v.b })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDMapPutGetBothKeys(t *testing.T) {
	m := newTestDMap(t, 4)
	v := pairVal{a: tKey{v: 1}, b: tKey{v: 100}, data: 7}
	if err := m.Put(2, v); err != nil {
		t.Fatal(err)
	}
	if i, ok := m.GetByFst(tKey{v: 1}); !ok || i != 2 {
		t.Fatalf("GetByFst: %d %v", i, ok)
	}
	if i, ok := m.GetBySnd(tKey{v: 100}); !ok || i != 2 {
		t.Fatalf("GetBySnd: %d %v", i, ok)
	}
	if got := m.Value(2); got == nil || got.data != 7 {
		t.Fatalf("Value: %+v", got)
	}
	if m.Size() != 1 {
		t.Fatalf("size %d", m.Size())
	}
}

func TestDMapEraseRemovesBothKeys(t *testing.T) {
	m := newTestDMap(t, 4)
	_ = m.Put(0, pairVal{a: tKey{v: 1}, b: tKey{v: 100}})
	if err := m.Erase(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GetByFst(tKey{v: 1}); ok {
		t.Fatal("first key survived erase")
	}
	if _, ok := m.GetBySnd(tKey{v: 100}); ok {
		t.Fatal("second key survived erase")
	}
	if m.Value(0) != nil {
		t.Fatal("value survived erase")
	}
	if err := m.Erase(0); !errors.Is(err, ErrDMapIndexFree) {
		t.Fatalf("double erase: %v", err)
	}
}

func TestDMapBusyIndexRejected(t *testing.T) {
	m := newTestDMap(t, 4)
	_ = m.Put(1, pairVal{a: tKey{v: 1}, b: tKey{v: 2}})
	err := m.Put(1, pairVal{a: tKey{v: 3}, b: tKey{v: 4}})
	if !errors.Is(err, ErrDMapIndexBusy) {
		t.Fatalf("want ErrDMapIndexBusy, got %v", err)
	}
}

// TestDMapDuplicateSecondKeyRollsBack is the atomicity check: a Put that
// fails on the second key must leave no trace under the first key.
func TestDMapDuplicateSecondKeyRollsBack(t *testing.T) {
	m := newTestDMap(t, 4)
	_ = m.Put(0, pairVal{a: tKey{v: 1}, b: tKey{v: 100}})
	err := m.Put(1, pairVal{a: tKey{v: 2}, b: tKey{v: 100}}) // second key dup
	if err == nil {
		t.Fatal("duplicate second key accepted")
	}
	if _, ok := m.GetByFst(tKey{v: 2}); ok {
		t.Fatal("rolled-back Put left first key indexed")
	}
	if m.Size() != 1 {
		t.Fatalf("size %d after rollback", m.Size())
	}
	// Index 1 must remain usable.
	if err := m.Put(1, pairVal{a: tKey{v: 2}, b: tKey{v: 200}}); err != nil {
		t.Fatalf("index unusable after rollback: %v", err)
	}
}

func TestDMapRangeChecks(t *testing.T) {
	m := newTestDMap(t, 2)
	if err := m.Put(-1, pairVal{}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := m.Put(2, pairVal{}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if m.Value(-1) != nil || m.Value(2) != nil {
		t.Fatal("out-of-range Value returned non-nil")
	}
	if m.Occupied(-1) || m.Occupied(2) {
		t.Fatal("out-of-range Occupied")
	}
}

func TestDMapForEach(t *testing.T) {
	m := newTestDMap(t, 8)
	for i := 0; i < 5; i++ {
		_ = m.Put(i, pairVal{a: tKey{v: uint64(i)}, b: tKey{v: uint64(100 + i)}, data: i})
	}
	_ = m.Erase(2)
	seen := map[int]bool{}
	m.ForEach(func(i int, v *pairVal) bool {
		seen[i] = true
		if v.data != i {
			t.Fatalf("value mismatch at %d", i)
		}
		return true
	})
	if len(seen) != 4 || seen[2] {
		t.Fatalf("ForEach visited %v", seen)
	}
}

// TestDMapChurn runs a model-checked random workload across both key
// spaces.
func TestDMapChurn(t *testing.T) {
	const cap = 16
	m := newTestDMap(t, cap)
	type entry struct{ a, b uint64 }
	model := map[int]entry{}
	nextKey := uint64(0)
	rng := uint64(99)
	rand := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 20000; step++ {
		switch rand(4) {
		case 0: // put at a free index
			idx := rand(cap)
			if _, busy := model[idx]; busy {
				continue
			}
			nextKey++
			e := entry{a: nextKey, b: nextKey + 1_000_000}
			if err := m.Put(idx, pairVal{a: tKey{v: e.a}, b: tKey{v: e.b}, data: idx}); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			model[idx] = e
		case 1: // erase a live index
			idx := rand(cap)
			_, busy := model[idx]
			err := m.Erase(idx)
			if busy && err != nil {
				t.Fatalf("step %d: erase live: %v", step, err)
			}
			if !busy && err == nil {
				t.Fatalf("step %d: erased free index", step)
			}
			delete(model, idx)
		case 2: // lookup by first key
			idx := rand(cap)
			e, busy := model[idx]
			if !busy {
				continue
			}
			got, ok := m.GetByFst(tKey{v: e.a})
			if !ok || got != idx {
				t.Fatalf("step %d: GetByFst %d %v want %d", step, got, ok, idx)
			}
		case 3: // lookup by second key
			idx := rand(cap)
			e, busy := model[idx]
			if !busy {
				continue
			}
			got, ok := m.GetBySnd(tKey{v: e.b})
			if !ok || got != idx {
				t.Fatalf("step %d: GetBySnd %d %v want %d", step, got, ok, idx)
			}
		}
		if m.Size() != len(model) {
			t.Fatalf("step %d: size %d model %d", step, m.Size(), len(model))
		}
	}
}
