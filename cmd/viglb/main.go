// Command viglb runs the Maglev-style L4 load balancer on the simulated
// DPDK substrate: two multi-queue ports, the shared nf.Pipeline engine,
// and a built-in client traffic source standing in for the wire (all
// supplied by nfkit.Main), including a mid-run backend removal whose
// disruption is reported at the end.
//
// Usage:
//
//	viglb [-backends N] [-flows N] [-packets N] [-timeout D]
//	      [-capacity N] [-shards N] [-workers N] [-burst N]
//	      [-amortized] [-metrics addr] [-churn]
//
// -shards > 1 partitions the sticky table RSS-style. The balancer
// needs no port-range trick to shard: a backend reply carries the
// client's address and the VIP port, so the client tuple — and hence
// the flow hash — reconstructs from either direction, and every
// session lives on exactly one shard with no locks.
//
// -churn removes one backend halfway through and reports how many
// flows the removal remapped (only the victim's, by construction).
package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"vignat/internal/flow"
	"vignat/internal/lb"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf/nfkit"
)

var vip = flow.MakeAddr(198, 18, 10, 10)

const vipPort = 443

func main() {
	backends := flag.Int("backends", 8, "live backend count")
	flows := flag.Int("flows", 1000, "number of concurrent client flows to simulate")
	churn := flag.Bool("churn", true, "remove one backend halfway through the run")

	nfkit.Main(nfkit.App{
		Name:            "viglb",
		DefaultCapacity: 65535,
		Build: func(o *nfkit.Options, clock libvig.Clock) (*nfkit.Run, error) {
			balancer, err := lb.NewSharded(lb.Config{
				VIP:         vip,
				VIPPort:     vipPort,
				Capacity:    o.Capacity,
				Timeout:     o.Timeout,
				MaxBackends: *backends,
			}, clock, o.Shards)
			if err != nil {
				return nil, err
			}
			backendIPs := make([]flow.Addr, *backends)
			for i := range backendIPs {
				backendIPs[i] = flow.MakeAddr(10, 1, byte(i>>8), byte(10+i))
				if _, err := balancer.AddBackend(backendIPs[i], clock.Now()); err != nil {
					return nil, err
				}
			}

			// Client flows, all addressed to the VIP.
			frames := make([][]byte, *flows)
			for f := range frames {
				spec := &netstack.FrameSpec{ID: flow.ID{
					SrcIP:   flow.MakeAddr(203, byte(f>>16), byte(f>>8), byte(f)),
					SrcPort: 20000,
					DstIP:   vip,
					DstPort: vipPort,
					Proto:   flow.UDP,
				}}
				frames[f] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
			}

			var flowsBefore, flowsAfterRemoval int
			run := &nfkit.Run{
				NF:             balancer,
				ShardOf:        balancer.ShardOf,
				Snapshot:       balancer.StatsSnapshot,
				Backends:       balancer,
				Frames:         frames,
				FromInternal:   false, // clients face the external port
				InternalPortID: 0,     // backend side
				ExternalPortID: 1,     // client side
				Banner: fmt.Sprintf("viglb: VIP=%v:%d, %d backends, CAP=%d Texp=%v, %d shards, %d workers, burst %d, %d flows, %d packets",
					vip, vipPort, *backends, o.Capacity, o.Timeout, balancer.Shards(), o.Workers, o.Burst, *flows, o.Packets),
				Report: func(w io.Writer, r *nfkit.RunReport) error {
					st := balancer.Stats()
					fmt.Fprintf(w, "processed %d packets in %v (%.2f Mpps offered)\n",
						st.Processed, r.Elapsed.Round(time.Millisecond), r.Mpps(st.Processed))
					fmt.Fprintf(w, "  to backends: %-10d to clients: %-10d dropped: %d\n",
						st.ToBackend, st.ToClient, st.Dropped)
					fmt.Fprintf(w, "  flows created: %-10d expired: %d  live: %d\n",
						st.FlowsCreated, st.FlowsExpired, balancer.Flows())
					if *churn && *backends > 1 {
						if int(st.FlowsUnpinned) != flowsBefore-flowsAfterRemoval {
							return fmt.Errorf("unpinned accounting mismatch: counter %d, observed %d",
								st.FlowsUnpinned, flowsBefore-flowsAfterRemoval)
						}
						fmt.Fprintf(w, "  backend churn: removed %v mid-run, %d/%d sticky flows remapped (only its own)\n",
							backendIPs[0], st.FlowsUnpinned, flowsBefore)
					}
					if int(st.FlowsCreated-st.FlowsExpired-st.FlowsUnpinned) != balancer.Flows() {
						return fmt.Errorf("sticky accounting mismatch: created %d − expired %d − unpinned %d ≠ live %d",
							st.FlowsCreated, st.FlowsExpired, st.FlowsUnpinned, balancer.Flows())
					}
					return nil
				},
			}
			if *churn && *backends > 1 {
				run.Mid = func() error {
					flowsBefore = balancer.Flows()
					if err := balancer.RemoveBackend(0); err != nil {
						return err
					}
					flowsAfterRemoval = balancer.Flows()
					return nil
				}
			}
			return run, nil
		},
	})
}
