// Command viglb runs the Maglev-style L4 load balancer on the simulated
// DPDK substrate: two multi-queue ports, the shared nf.Pipeline engine,
// and a built-in client traffic source standing in for the wire. It
// demonstrates the repository's second stateful NF on the same
// production composition as the NAT (netstack ⊕ libVig CHT + sticky
// table ⊕ dpdk ports ⊕ nf engine), including a mid-run backend removal
// whose disruption is reported at the end.
//
// Usage:
//
//	viglb [-backends N] [-flows N] [-packets N] [-timeout D]
//	      [-capacity N] [-shards N] [-workers N] [-burst N] [-churn]
//
// -shards > 1 partitions the sticky table RSS-style. The balancer
// needs no port-range trick to shard: a backend reply carries the
// client's address and the VIP port, so the client tuple — and hence
// the flow hash — reconstructs from either direction, and every
// session lives on exactly one shard with no locks.
//
// -churn removes one backend halfway through and reports how many
// flows the removal remapped (only the victim's, by construction).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"vignat/internal/dpdk"
	"vignat/internal/flow"
	"vignat/internal/lb"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf"
)

var vip = flow.MakeAddr(198, 18, 10, 10)

const vipPort = 443

func main() {
	backends := flag.Int("backends", 8, "live backend count")
	flows := flag.Int("flows", 1000, "number of concurrent client flows to simulate")
	packets := flag.Int("packets", 200000, "packets to push through the balancer")
	timeout := flag.Duration("timeout", 2*time.Second, "sticky-entry expiry (Texp)")
	capacity := flag.Int("capacity", 65535, "sticky flow-table capacity")
	shards := flag.Int("shards", 1, "balancer shards (disjoint sticky tables, replicated CHT)")
	workers := flag.Int("workers", 0, "run-to-completion workers / RSS queue pairs (0 = one per shard)")
	burst := flag.Int("burst", nf.DefaultBurst, "RX/TX burst size")
	churn := flag.Bool("churn", true, "remove one backend halfway through the run")
	metricsAddr := flag.String("metrics", "", "serve StatsSnapshot over HTTP/expvar on this address (e.g. :9090)")
	flag.Parse()

	clock := libvig.NewVirtualClock(0)
	balancer, err := lb.NewSharded(lb.Config{
		VIP:         vip,
		VIPPort:     vipPort,
		Capacity:    *capacity,
		Timeout:     *timeout,
		MaxBackends: *backends,
	}, clock, *shards)
	if err != nil {
		fatal(err)
	}
	backendIPs := make([]flow.Addr, *backends)
	for i := range backendIPs {
		backendIPs[i] = flow.MakeAddr(10, 1, byte(i>>8), byte(10+i))
		if _, err := balancer.AddBackend(backendIPs[i], clock.Now()); err != nil {
			fatal(err)
		}
	}
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = *shards
	}
	if nWorkers < 1 || nWorkers > *shards {
		fatal(fmt.Errorf("workers must be in [1,%d]", *shards))
	}

	intPort, intPools, err := nf.NewWorkerPorts(0, nWorkers, 4096/nWorkers) // backend side
	if err != nil {
		fatal(err)
	}
	extPort, extPools, err := nf.NewWorkerPorts(1, nWorkers, 4096/nWorkers) // client side
	if err != nil {
		fatal(err)
	}

	pipe, err := nf.NewPipeline(balancer, nf.Config{
		Internal: intPort,
		External: extPort,
		Burst:    *burst,
		Workers:  nWorkers,
		Clock:    clock,
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		m, err := nf.ServeMetrics(*metricsAddr,
			nf.MetricSource{Name: "viglb", Snapshot: balancer.StatsSnapshot})
		if err != nil {
			fatal(err)
		}
		defer m.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars)\n", m.Addr())
	}

	// Client flows, all addressed to the VIP.
	frames := make([][]byte, *flows)
	for f := range frames {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP:   flow.MakeAddr(203, byte(f>>16), byte(f>>8), byte(f)),
			SrcPort: 20000,
			DstIP:   vip,
			DstPort: vipPort,
			Proto:   flow.UDP,
		}}
		frames[f] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
	}

	fmt.Printf("viglb: VIP=%v:%d, %d backends, CAP=%d Texp=%v, %d shards, %d workers, burst %d, %d flows, %d packets\n",
		vip, vipPort, *backends, *capacity, *timeout, balancer.Shards(), nWorkers, *burst, *flows, *packets)

	// Pre-steer the packet sequence per worker (clients face the
	// external port, so steering uses the client side).
	workerOf := make([]int, len(frames))
	for f := range frames {
		workerOf[f] = balancer.ShardOf(frames[f], false) % nWorkers
	}
	lists := make([][]int, nWorkers)
	for i := 0; i < *packets; i++ {
		f := i % len(frames)
		lists[workerOf[f]] = append(lists[workerOf[f]], f)
	}

	// Drive each half of the run, with optional backend churn between.
	runHalf := func(half int) {
		var wg sync.WaitGroup
		errs := make([]error, nWorkers)
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				drain := make([]*dpdk.Mbuf, *burst)
				list := lists[w]
				lo, hi := half*len(list)/2, (half+1)*len(list)/2
				for off := lo; off < hi; off += *burst {
					c := *burst
					if off+c > hi {
						c = hi - off
					}
					for j := 0; j < c; j++ {
						clock.Advance(1000) // 1 µs between arrivals
						extPort.DeliverRxQueue(w, frames[list[off+j]], clock.Now())
					}
					if _, err := pipe.PollWorker(w); err != nil {
						errs[w] = err
						return
					}
					for {
						k := intPort.DrainTxQueue(w, drain)
						if k == 0 {
							break
						}
						for i := 0; i < k; i++ {
							if err := drain[i].Pool().Free(drain[i]); err != nil {
								errs[w] = err
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				fatal(err)
			}
		}
	}

	start := time.Now()
	runHalf(0)
	flowsBefore := balancer.Flows()
	if *churn && *backends > 1 {
		if err := balancer.RemoveBackend(0); err != nil {
			fatal(err)
		}
	}
	flowsAfterRemoval := balancer.Flows()
	runHalf(1)
	elapsed := time.Since(start)

	st := balancer.Stats()
	snap := balancer.StatsSnapshot()
	ps := pipe.Stats()
	es := extPort.Stats()
	fmt.Printf("processed %d packets in %v (%.2f Mpps offered)\n",
		st.Processed, elapsed.Round(time.Millisecond),
		float64(st.Processed)/elapsed.Seconds()/1e6)
	fmt.Printf("  to backends: %-10d to clients: %-10d dropped: %d\n",
		st.ToBackend, st.ToClient, st.Dropped)
	fmt.Printf("  flows created: %-10d expired: %d  live: %d\n",
		st.FlowsCreated, st.FlowsExpired, balancer.Flows())
	if *churn && *backends > 1 {
		if int(st.FlowsUnpinned) != flowsBefore-flowsAfterRemoval {
			fatal(fmt.Errorf("unpinned accounting mismatch: counter %d, observed %d",
				st.FlowsUnpinned, flowsBefore-flowsAfterRemoval))
		}
		fmt.Printf("  backend churn: removed %v mid-run, %d/%d sticky flows remapped (only its own)\n",
			backendIPs[0], st.FlowsUnpinned, flowsBefore)
	}
	if int(st.FlowsCreated-st.FlowsExpired-st.FlowsUnpinned) != balancer.Flows() {
		fatal(fmt.Errorf("sticky accounting mismatch: created %d − expired %d − unpinned %d ≠ live %d",
			st.FlowsCreated, st.FlowsExpired, st.FlowsUnpinned, balancer.Flows()))
	}
	nf.FprintEngineReport(os.Stdout, ps, snap)
	fmt.Printf("  client port: rx=%d rx_dropped=%d\n", es.RxPackets, es.RxDropped)
	if err := nf.MbufAccounting(extPort.RxQueueLen()+intPort.TxQueueLen(),
		append(append([]*dpdk.Mempool(nil), intPools...), extPools...)...); err != nil {
		fatal(err)
	}
	fmt.Println("mbuf accounting clean (no leaks)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "viglb:", err)
	os.Exit(1)
}
