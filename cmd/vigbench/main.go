// Command vigbench regenerates the paper's evaluation (§6): every figure
// and the in-text verification statistics, printed as paper-style tables.
//
// Usage:
//
//	vigbench [-fig 12|12x|13|14|v1|pipeline|lb|policer|fastpath|telemetry|ablation|all] [-scale F]
//
// -scale shrinks experiment durations (1.0 = full paper-shaped run,
// 0.2 = quick look). Absolute numbers are testbed-model calibrated; the
// claim being reproduced is the *shape* (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vignat/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 12, 12x, 13, 14, v1, pipeline, lb, policer, fastpath, telemetry, ablation, all")
	scale := flag.Float64("scale", 1.0, "duration scale (0.2 = quick)")
	benchOut := flag.String("bench-out", "BENCH_pipeline.json",
		"where the pipeline experiment writes its machine-readable results (empty disables)")
	lbOut := flag.String("lb-out", "BENCH_lb.json",
		"where the lb experiment writes its machine-readable results (empty disables)")
	policerOut := flag.String("policer-out", "BENCH_policer.json",
		"where the policer experiment writes its machine-readable results (empty disables)")
	fastpathOut := flag.String("fastpath-out", "BENCH_fastpath.json",
		"where the fastpath experiment writes its machine-readable results (empty disables)")
	telemetryOut := flag.String("telemetry-out", "BENCH_telemetry.json",
		"where the telemetry experiment writes its machine-readable results (empty disables)")
	flag.Parse()

	s := experiments.Scale(*scale)
	ran := 0
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		ran++
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "vigbench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("12", func() error {
		fmt.Println("=== Fig. 12: average probe-flow latency vs background flows (Texp = 2s) ===")
		rows, err := experiments.Fig12(experiments.Fig12Config{Timeout: 2 * time.Second, Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig12(rows, nil))
		return nil
	})

	run("12x", func() error {
		fmt.Println("=== Fig. 12 variant (in text): Texp = 60s, flows never expire ===")
		rows, err := experiments.Fig12(experiments.Fig12Config{Timeout: 60 * time.Second, Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig12(rows, nil))
		return nil
	})

	run("13", func() error {
		fmt.Println("=== Fig. 13: probe-latency CCDF at 60k background flows ===")
		rows, err := experiments.Fig13(experiments.Fig13Config{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig13(rows))
		return nil
	})

	run("14", func() error {
		fmt.Println("=== Fig. 14: max throughput at ≤0.1% loss vs flow count (64B packets) ===")
		rows, err := experiments.Fig14(experiments.Fig14Config{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig14(rows, nil))
		return nil
	})

	run("v1", func() error {
		fmt.Println("=== Verification statistics (paper §5.2.1–5.2.2 in-text) ===")
		tv, err := experiments.RunTableV1(runtime.GOMAXPROCS(0), 50)
		if err != nil {
			return err
		}
		fmt.Print(tv.Format())
		return nil
	})

	run("pipeline", func() error {
		fmt.Println("=== NF pipeline: per-packet vs batched, measured multi-queue worker scaling ===")
		rows, err := experiments.PipelineScaling(experiments.PipelineConfig{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPipeline(rows))
		if *benchOut != "" {
			if err := experiments.WritePipelineJSON(*benchOut, rows); err != nil {
				return err
			}
			fmt.Printf("(results written to %s)\n", *benchOut)
		}
		return nil
	})

	run("lb", func() error {
		fmt.Println("=== Maglev-style LB: batched cost vs the sharded NAT, CHT disruption ===")
		rows, err := experiments.LBScaling(experiments.LBConfig{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatLB(rows))
		disruption, err := experiments.CHTDisruption(nil, 0)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(experiments.FormatCHTDisruption(disruption))
		if *lbOut != "" {
			if err := experiments.WriteLBJSON(*lbOut, rows, disruption); err != nil {
				return err
			}
			fmt.Printf("(results written to %s)\n", *lbOut)
		}
		return nil
	})

	run("policer", func() error {
		fmt.Println("=== Traffic policer: batched vs per-packet, cost vs the sharded NAT ===")
		rows, err := experiments.PolicerScaling(experiments.PolicerConfig{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPolicer(rows))
		if *policerOut != "" {
			if err := experiments.WritePolicerJSON(*policerOut, rows); err != nil {
				return err
			}
			fmt.Printf("(results written to %s)\n", *policerOut)
		}
		return nil
	})

	run("fastpath", func() error {
		fmt.Println("=== Established-flow fast path: ns/pkt vs established-traffic share ===")
		rows, err := experiments.FastPathSweep(experiments.FastPathConfig{Scale: s})
		if err != nil {
			return err
		}
		// The firewall leg brackets the other end of the cache's design
		// space: a pass-through NF whose entries carry the identity flag,
		// so a hit resolves the verdict without replaying any rewrite.
		fwRows, err := experiments.FastPathSweep(experiments.FastPathConfig{
			NF: "firewall", HitPcts: []int{0, 50, 100}, Scale: s,
		})
		if err != nil {
			return err
		}
		rows = append(rows, fwRows...)
		fmt.Print(experiments.FormatFastpath(rows))
		if *fastpathOut != "" {
			if err := experiments.WriteFastpathJSON(*fastpathOut, rows); err != nil {
				return err
			}
			fmt.Printf("(results written to %s)\n", *fastpathOut)
		}
		return nil
	})

	run("telemetry", func() error {
		fmt.Println("=== Telemetry overhead: gateway chain off vs on, NAT fast/slow split ===")
		res, err := experiments.TelemetryOverhead(experiments.TelemetryConfig{Scale: s})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTelemetry(res))
		if *telemetryOut != "" {
			if err := experiments.WriteTelemetryJSON(*telemetryOut, res); err != nil {
				return err
			}
			fmt.Printf("(results written to %s)\n", *telemetryOut)
		}
		return nil
	})

	run("ablation", func() error {
		fmt.Println("=== Flow-table ablation: open addressing (verified) vs chaining (unverified) ===")
		rows, err := experiments.RunAblation([]float64{0.25, 0.5, 0.75, 0.92, 0.99}, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation(rows))
		return nil
	})

	// A -fig value that matched no experiment is a user error, not a
	// silent no-op: name the figure and list the valid ones.
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "vigbench: unknown figure %q (valid: 12, 12x, 13, 14, v1, pipeline, lb, policer, fastpath, telemetry, ablation, all)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
