// Command vigblast is the wire-mode traffic source for NFs whose
// client side vigwire cannot play (vigwire speaks the NAT's RFC 3022
// dialect and runs lock-step against its oracle). vigblast is
// open-loop: it crafts client or subscriber frames and sends each as
// one UDP datagram — the dpdk udp transport's frames-as-datagrams
// framing — to a daemon's external-port socket, paced by -interval,
// never waiting for replies. That is exactly the shape the wire smoke
// test needs to hold a viglb or vigpol daemon under live traffic while
// control-plane verbs land on /control/v1.
//
// Usage:
//
//	vigblast -peer 127.0.0.1:19301 -kind lb -flows 64 -packets 4000
//	vigblast -peer 127.0.0.1:19401 -kind policer -flows 32 -packets 4000
//
// -kind lb sends distinct client tuples to the viglb VIP
// (198.18.10.10:443, the address cmd/viglb hardcodes), pinning one
// sticky flow per client. -kind policer sends downstream frames to
// distinct subscriber IPs in 10.0.0.0/16, creating one token bucket
// each.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"vignat/internal/flow"
	"vignat/internal/netstack"
)

func craft(id flow.ID, payload int) []byte {
	spec := &netstack.FrameSpec{ID: id, PayloadLen: payload}
	return netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
}

func main() {
	peer := flag.String("peer", "", "daemon socket to blast (its external port's queue-0 address)")
	kind := flag.String("kind", "lb", "frame shape: lb (client→VIP) or policer (downstream→subscriber)")
	flows := flag.Int("flows", 64, "distinct client/subscriber tuples to cycle through")
	packets := flag.Int("packets", 4000, "total datagrams to send")
	interval := flag.Duration("interval", 200*time.Microsecond, "gap between datagrams (open-loop pacing)")
	payload := flag.Int("payload", 64, "UDP payload bytes per frame")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "vigblast: %v\n", err)
		os.Exit(1)
	}
	if *peer == "" {
		fail(fmt.Errorf("-peer is required"))
	}
	frames := make([][]byte, *flows)
	for i := range frames {
		var id flow.ID
		switch *kind {
		case "lb":
			id = flow.ID{
				SrcIP:   flow.MakeAddr(203, 0, byte(i>>8), byte(1+i)),
				SrcPort: uint16(20000 + i),
				DstIP:   flow.MakeAddr(198, 18, 10, 10),
				DstPort: 443,
				Proto:   flow.UDP,
			}
		case "policer":
			id = flow.ID{
				SrcIP:   flow.MakeAddr(198, 51, 100, 7),
				SrcPort: 443,
				DstIP:   flow.MakeAddr(10, 0, byte(i>>8), byte(1+i)),
				DstPort: 8080,
				Proto:   flow.UDP,
			}
		default:
			fail(fmt.Errorf("unknown -kind %q (want lb or policer)", *kind))
		}
		frames[i] = craft(id, *payload)
	}

	conn, err := net.Dial("udp", *peer)
	if err != nil {
		fail(err)
	}
	defer conn.Close()
	for p := 0; p < *packets; p++ {
		if _, err := conn.Write(frames[p%len(frames)]); err != nil {
			fail(fmt.Errorf("datagram %d: %w", p, err))
		}
		time.Sleep(*interval)
	}
	fmt.Printf("vigblast: sent %d %s datagrams (%d flows) to %s\n", *packets, *kind, *flows, *peer)
}
