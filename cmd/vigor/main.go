// Command vigor runs the verification pipeline — exhaustive symbolic
// execution plus lazy-proof validation (the paper's §5) — over the NFs
// in this repository and prints a Fig. 7-style report.
//
// Usage:
//
//	vigor [-nf nat|discard] [-model exact|over|under] [-workers N]
//	      [-traces] [-inventory]
//
// -model selects the symbolic model, including the two deliberately
// broken ones from the paper's Fig. 4, whose failure modes the report
// then demonstrates. -traces dumps every symbolic trace in the Fig. 9
// format. -inventory prints the code-size breakdown (the paper's §5.1.3
// statistics analogue).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vignat/internal/discard"
	"vignat/internal/experiments"
	"vignat/internal/firewall"
	"vignat/internal/vigor/symbex"
	"vignat/internal/vigor/validator"
)

func main() {
	nf := flag.String("nf", "nat", "network function to verify: nat, discard, or firewall")
	model := flag.String("model", "exact", "symbolic model: exact, over (Fig.4b), under (Fig.4c)")
	workers := flag.Int("workers", 0, "validation workers (0 = all CPUs)")
	traces := flag.Bool("traces", false, "dump symbolic traces (Fig. 9 format)")
	inventory := flag.Bool("inventory", false, "print code inventory and exit")
	flag.Parse()

	if *inventory {
		if err := printInventory(); err != nil {
			fmt.Fprintln(os.Stderr, "vigor:", err)
			os.Exit(1)
		}
		return
	}

	switch *nf {
	case "nat":
		runNAT(*model, *workers, *traces)
	case "discard":
		runDiscard(*model)
	case "firewall":
		runFirewall()
	default:
		fmt.Fprintf(os.Stderr, "vigor: unknown nf %q\n", *nf)
		os.Exit(2)
	}
}

func runFirewall() {
	rep, err := firewall.Verify()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vigor:", err)
		os.Exit(1)
	}
	fmt.Println(rep.Summary())
	if !rep.OK() {
		os.Exit(1)
	}
}

func natPolicy(model string) symbex.ModelPolicy {
	switch model {
	case "over":
		return symbex.ModelOverApprox
	case "under":
		return symbex.ModelUnderApprox
	default:
		return symbex.ModelExact
	}
}

func runNAT(model string, workers int, dumpTraces bool) {
	cfg := symbex.NATEnvConfig{
		Policy:    natPolicy(model),
		PortBase:  experiments.PortBase,
		PortCount: experiments.Capacity,
	}
	res, err := symbex.RunNAT(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vigor:", err)
		os.Exit(1)
	}
	fmt.Printf("exhaustive symbolic execution: %d feasible paths, %d pruned, %d verification tasks\n",
		len(res.Paths), res.Pruned, res.TraceCount())
	if dumpTraces {
		for i, t := range res.Paths {
			fmt.Printf("--- path %d ---\n%s\n", i, t.String())
		}
	}
	rep := validator.Validate(res, validator.Config{Workers: workers})
	fmt.Println(rep.Summary())
	for _, v := range rep.Verdicts {
		if !v.OK() {
			fmt.Printf("  path %d: P1=%v P4=%v P5=%v\n", v.Path, v.P1Err, v.P4Errs, v.P5Errs)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func runDiscard(model string) {
	var m discard.RingModel
	switch model {
	case "over":
		m = discard.RingModelOverApprox
	case "under":
		m = discard.RingModelUnderApprox
	default:
		m = discard.RingModelExact
	}
	rep, err := discard.Verify(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vigor:", err)
		os.Exit(1)
	}
	fmt.Println(rep.Summary())
	for _, f := range rep.P1Failures {
		fmt.Println("  P1:", f)
	}
	for _, f := range rep.P5Failures {
		fmt.Println("  P5:", f)
	}
	for _, f := range rep.P2Violations {
		fmt.Println("  P2:", f)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// printInventory reports lines of code per subsystem, the analogue of
// the paper's "libVig contains 2.2 KLOC of C, 4K lines of contracts,
// 21.8K lines of proof".
func printInventory() error {
	groups := map[string]string{
		"internal/libvig":           "libVig data structures",
		"internal/firewall":         "stateful firewall NF (extension)",
		"internal/libvig/contracts": "libVig contracts (P3 harness)",
		"internal/nat":              "VigNAT (production)",
		"internal/vigor":            "Vigor toolchain (ESE+validator)",
		"internal/netstack":         "packet codec",
		"internal/dpdk":             "DPDK substrate",
		"internal/moongen":          "traffic generator",
		"internal/testbed":          "testbed simulation",
		"internal/unverified":       "unverified NAT baseline",
		"internal/netfilter":        "NetFilter baseline",
		"internal/discard":          "discard example NF",
	}
	type row struct {
		name       string
		code, test int
	}
	var rows []row
	for dir, name := range groups {
		code, test, err := countDir(dir)
		if err != nil {
			return err
		}
		rows = append(rows, row{name, code, test})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].code > rows[j].code })
	fmt.Printf("%-34s %10s %10s\n", "subsystem", "code LoC", "test LoC")
	totalC, totalT := 0, 0
	for _, r := range rows {
		fmt.Printf("%-34s %10d %10d\n", r.name, r.code, r.test)
		totalC += r.code
		totalT += r.test
	}
	fmt.Printf("%-34s %10d %10d\n", "total", totalC, totalT)
	return nil
}

func countDir(dir string) (code, test int, err error) {
	err = filepath.Walk(dir, func(path string, info os.FileInfo, werr error) error {
		if werr != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return werr
		}
		// Group directories nest (libvig/contracts under libvig);
		// count files in exactly the requested directory tree, letting
		// the sub-group double-count intentionally for its own row.
		n, cerr := countLines(path)
		if cerr != nil {
			return cerr
		}
		if strings.HasSuffix(path, "_test.go") {
			test += n
		} else {
			code += n
		}
		return nil
	})
	return code, test, err
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}
