// Command vigpol runs the per-subscriber traffic policer on the
// simulated DPDK substrate: two multi-queue ports, the shared
// nf.Pipeline engine, and a built-in downstream traffic source standing
// in for the wire (all supplied by nfkit.Main), with a configurable
// share of subscribers flooded past their budget so the policing itself
// is visible in the final report.
//
// Usage:
//
//	vigpol [-rate B/s] [-bucket B] [-subscribers N] [-flood F]
//	       [-packets N] [-timeout D] [-capacity N] [-shards N]
//	       [-workers N] [-burst N] [-amortized] [-metrics addr]
//
// NOTE: -burst is the engine's RX/TX burst size (packets), shared with
// every demo binary; the per-subscriber bucket depth — which older
// versions called -burst — is now -bucket (bytes).
//
// -shards > 1 partitions the subscriber table RSS-style. The policer
// needs no port-range trick and no tuple reconstruction to shard: the
// only state key is the client IP, so ingress steers by destination
// address, egress by source address, and every subscriber lives on
// exactly one shard with no locks.
//
// -amortized switches the engine to once-per-poll expiry (the
// oracle-equivalent batching of the Fig. 6 sweep).
//
// -metrics serves every shard's StatsSnapshot over HTTP/expvar while
// the run is in flight — the scrape is a handful of atomic loads and
// never touches worker-owned state.
package main

import (
	"flag"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf/nfkit"
	"vignat/internal/policer"
)

func main() {
	rate := flag.Int64("rate", 1_000_000, "per-subscriber sustained budget (bytes/second)")
	bucket := flag.Int64("bucket", 16384, "per-subscriber bucket depth (bytes)")
	subscribers := flag.Int("subscribers", 1000, "number of subscriber IPs receiving traffic")
	flood := flag.Float64("flood", 0.25, "fraction of subscribers flooded past their budget")

	nfkit.Main(nfkit.App{
		Name:            "vigpol",
		DefaultCapacity: 65535,
		Build: func(o *nfkit.Options, clock libvig.Clock) (*nfkit.Run, error) {
			pol, err := policer.NewSharded(policer.Config{
				Rate:     *rate,
				Burst:    *bucket,
				Capacity: o.Capacity,
				Timeout:  o.Timeout,
			}, clock, o.Shards)
			if err != nil {
				return nil, err
			}

			// Downstream frames, one per subscriber: flooded subscribers
			// receive large frames whose arrival rate exceeds their
			// budget, the rest get small conforming traffic.
			nFlooded := int(float64(*subscribers) * *flood)
			frames := make([][]byte, *subscribers)
			for f := range frames {
				payload := 40
				if f < nFlooded {
					payload = 1400
				}
				spec := &netstack.FrameSpec{ID: flow.ID{
					SrcIP:   flow.MakeAddr(198, 51, 100, 7),
					SrcPort: 443,
					DstIP:   flow.MakeAddr(10, byte(f>>16), byte(f>>8), byte(f)),
					DstPort: 8080,
					Proto:   flow.UDP,
				}, PayloadLen: payload}
				frames[f] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
			}

			amortizedNote := ""
			if o.Amortize {
				amortizedNote = ", amortized expiry"
			}
			var delivered atomic.Int64
			return &nfkit.Run{
				NF:             pol,
				ShardOf:        pol.ShardOf,
				Snapshot:       pol.StatsSnapshot,
				Rate:           pol,
				Frames:         frames,
				FromInternal:   false, // downstream traffic enters upstream-side
				InternalPortID: 0,     // subscriber side
				ExternalPortID: 1,     // upstream side
				Banner: fmt.Sprintf("vigpol: rate=%d B/s burst=%d B Texp=%v CAP=%d, %d shards, %d workers, rx burst %d, %d subscribers (%d flooded), %d packets%s",
					*rate, *bucket, o.Timeout, o.Capacity, pol.Shards(), o.Workers, o.Burst,
					*subscribers, nFlooded, o.Packets, amortizedNote),
				OnDelivered: func(_ int, frame []byte) {
					delivered.Add(int64(len(frame)))
				},
				Report: func(w io.Writer, r *nfkit.RunReport) error {
					st := pol.Stats()
					fmt.Fprintf(w, "processed %d packets in %v (%.2f Mpps offered)\n",
						st.Processed, r.Elapsed.Round(time.Millisecond), r.Mpps(st.Processed))
					fmt.Fprintf(w, "  conformed: %-10d over-rate drops: %-10d table-full drops: %d\n",
						st.Conformed, st.DroppedOverRate, st.DroppedTableFull)
					fmt.Fprintf(w, "  subscribers admitted: %-10d expired: %d  tracked: %d\n",
						st.BucketsCreated, st.BucketsExpired, pol.Subscribers())
					if int(st.BucketsCreated-st.BucketsExpired) != pol.Subscribers() {
						return fmt.Errorf("subscriber accounting mismatch: created %d − expired %d ≠ tracked %d",
							st.BucketsCreated, st.BucketsExpired, pol.Subscribers())
					}
					if nFlooded > 0 && st.DroppedOverRate == 0 {
						return fmt.Errorf("flooded subscribers were never clipped; the policer policed nothing")
					}
					// The budget law, checked on the wire: every delivered
					// byte was paid from an admission burst or a refill.
					lawBudget := int64(st.BucketsCreated)*(*bucket) +
						(r.Now/1_000_000_000+1)*(*rate)*int64(*subscribers)
					if d := delivered.Load(); d > lawBudget {
						return fmt.Errorf("long-run budget law violated: %d delivered bytes > %d budget", d, lawBudget)
					}
					fmt.Fprintf(w, "  delivered %d bytes ≤ budget-law bound %d ✓\n", delivered.Load(), lawBudget)
					return nil
				},
			}, nil
		},
	})
}
