// Command vigpol runs the per-subscriber traffic policer on the
// simulated DPDK substrate: two multi-queue ports, the shared
// nf.Pipeline engine, and a built-in downstream traffic source standing
// in for the wire. It demonstrates the repository's fourth stateful NF
// on the same production composition as the NAT (netstack ⊕ libVig
// TokenBucket + subscriber table ⊕ dpdk ports ⊕ nf engine), with a
// configurable share of subscribers flooded past their budget so the
// policing itself is visible in the final report.
//
// Usage:
//
//	vigpol [-rate B/s] [-burst B] [-subscribers N] [-flood F]
//	       [-packets N] [-timeout D] [-capacity N] [-shards N]
//	       [-workers N] [-rxburst N] [-amortized] [-metrics addr]
//
// -shards > 1 partitions the subscriber table RSS-style. The policer
// needs no port-range trick and no tuple reconstruction to shard: the
// only state key is the client IP, so ingress steers by destination
// address, egress by source address, and every subscriber lives on
// exactly one shard with no locks.
//
// -amortized switches the engine to once-per-poll expiry (the
// oracle-equivalent batching of the Fig. 6 sweep).
//
// -metrics serves every shard's StatsSnapshot over HTTP/expvar while
// the run is in flight — the scrape is a handful of atomic loads and
// never touches worker-owned state.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"vignat/internal/dpdk"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/policer"
)

func main() {
	rate := flag.Int64("rate", 1_000_000, "per-subscriber sustained budget (bytes/second)")
	burstBytes := flag.Int64("burst", 16384, "per-subscriber bucket depth (bytes)")
	subscribers := flag.Int("subscribers", 1000, "number of subscriber IPs receiving traffic")
	flood := flag.Float64("flood", 0.25, "fraction of subscribers flooded past their budget")
	packets := flag.Int("packets", 200000, "packets to push through the policer")
	timeout := flag.Duration("timeout", 2*time.Second, "subscriber idle expiry (Texp)")
	capacity := flag.Int("capacity", 65535, "subscriber table capacity")
	shards := flag.Int("shards", 1, "policer shards (disjoint subscriber tables)")
	workers := flag.Int("workers", 0, "run-to-completion workers / RSS queue pairs (0 = one per shard)")
	rxburst := flag.Int("rxburst", nf.DefaultBurst, "RX/TX burst size")
	amortized := flag.Bool("amortized", false, "engine-level once-per-poll expiry instead of per-packet")
	metricsAddr := flag.String("metrics", "", "serve StatsSnapshot over HTTP/expvar on this address (e.g. :9090)")
	flag.Parse()

	clock := libvig.NewVirtualClock(0)
	pol, err := policer.NewSharded(policer.Config{
		Rate:     *rate,
		Burst:    *burstBytes,
		Capacity: *capacity,
		Timeout:  *timeout,
	}, clock, *shards)
	if err != nil {
		fatal(err)
	}
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = *shards
	}
	if nWorkers < 1 || nWorkers > *shards {
		fatal(fmt.Errorf("workers must be in [1,%d]", *shards))
	}

	intPort, intPools, err := nf.NewWorkerPorts(0, nWorkers, 4096/nWorkers) // subscriber side
	if err != nil {
		fatal(err)
	}
	extPort, extPools, err := nf.NewWorkerPorts(1, nWorkers, 4096/nWorkers) // upstream side
	if err != nil {
		fatal(err)
	}

	pipe, err := nf.NewPipeline(pol, nf.Config{
		Internal:        intPort,
		External:        extPort,
		Burst:           *rxburst,
		Workers:         nWorkers,
		Clock:           clock,
		AmortizedExpiry: *amortized,
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		m, err := nf.ServeMetrics(*metricsAddr,
			nf.MetricSource{Name: "vigpol", Snapshot: pol.StatsSnapshot})
		if err != nil {
			fatal(err)
		}
		defer m.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars)\n", m.Addr())
	}

	// Downstream frames, one per subscriber: flooded subscribers receive
	// large frames whose arrival rate exceeds their budget, the rest get
	// small conforming traffic.
	nFlooded := int(float64(*subscribers) * *flood)
	frames := make([][]byte, *subscribers)
	for f := range frames {
		payload := 40
		if f < nFlooded {
			payload = 1400
		}
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP:   flow.MakeAddr(198, 51, 100, 7),
			SrcPort: 443,
			DstIP:   flow.MakeAddr(10, byte(f>>16), byte(f>>8), byte(f)),
			DstPort: 8080,
			Proto:   flow.UDP,
		}, PayloadLen: payload}
		frames[f] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
	}

	fmt.Printf("vigpol: rate=%d B/s burst=%d B Texp=%v CAP=%d, %d shards, %d workers, rx burst %d, %d subscribers (%d flooded), %d packets%s\n",
		*rate, *burstBytes, *timeout, *capacity, pol.Shards(), nWorkers, *rxburst,
		*subscribers, nFlooded, *packets, map[bool]string{true: ", amortized expiry"}[*amortized])

	// Pre-steer the packet sequence per worker (ingress steers by the
	// subscriber's address on the external side).
	workerOf := make([]int, len(frames))
	for f := range frames {
		workerOf[f] = pol.ShardOf(frames[f], false) % nWorkers
	}
	lists := make([][]int, nWorkers)
	for i := 0; i < *packets; i++ {
		f := i % len(frames)
		lists[workerOf[f]] = append(lists[workerOf[f]], f)
	}

	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	conformedBytes := make([]int64, nWorkers)
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drain := make([]*dpdk.Mbuf, *rxburst)
			list := lists[w]
			for off := 0; off < len(list); off += *rxburst {
				c := *rxburst
				if off+c > len(list) {
					c = len(list) - off
				}
				for j := 0; j < c; j++ {
					clock.Advance(1000) // 1 µs between arrivals
					extPort.DeliverRxQueue(w, frames[list[off+j]], clock.Now())
				}
				if _, err := pipe.PollWorker(w); err != nil {
					errs[w] = err
					return
				}
				for {
					k := intPort.DrainTxQueue(w, drain)
					if k == 0 {
						break
					}
					for i := 0; i < k; i++ {
						conformedBytes[w] += int64(len(drain[i].Data))
						if err := drain[i].Pool().Free(drain[i]); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	st := pol.Stats()
	ps := pipe.Stats()
	es := extPort.Stats()
	fmt.Printf("processed %d packets in %v (%.2f Mpps offered)\n",
		st.Processed, elapsed.Round(time.Millisecond),
		float64(st.Processed)/elapsed.Seconds()/1e6)
	fmt.Printf("  conformed: %-10d over-rate drops: %-10d table-full drops: %d\n",
		st.Conformed, st.DroppedOverRate, st.DroppedTableFull)
	fmt.Printf("  subscribers admitted: %-10d expired: %d  tracked: %d\n",
		st.BucketsCreated, st.BucketsExpired, pol.Subscribers())
	if int(st.BucketsCreated-st.BucketsExpired) != pol.Subscribers() {
		fatal(fmt.Errorf("subscriber accounting mismatch: created %d − expired %d ≠ tracked %d",
			st.BucketsCreated, st.BucketsExpired, pol.Subscribers()))
	}
	if nFlooded > 0 && st.DroppedOverRate == 0 {
		fatal(fmt.Errorf("flooded subscribers were never clipped; the policer policed nothing"))
	}
	// The budget law, checked on the wire: every delivered byte was paid
	// from an admission burst or a refill.
	var delivered int64
	for _, b := range conformedBytes {
		delivered += b
	}
	lawBudget := int64(st.BucketsCreated)*(*burstBytes) +
		(clock.Now()/1_000_000_000+1)*(*rate)*int64(*subscribers)
	if delivered > lawBudget {
		fatal(fmt.Errorf("long-run budget law violated: %d delivered bytes > %d budget", delivered, lawBudget))
	}
	fmt.Printf("  delivered %d bytes ≤ budget-law bound %d ✓\n", delivered, lawBudget)
	nf.FprintEngineReport(os.Stdout, ps, pol.StatsSnapshot())
	fmt.Printf("  upstream port: rx=%d rx_dropped=%d\n", es.RxPackets, es.RxDropped)
	if err := nf.MbufAccounting(extPort.RxQueueLen()+intPort.TxQueueLen(),
		append(append([]*dpdk.Mempool(nil), intPools...), extPools...)...); err != nil {
		fatal(err)
	}
	fmt.Println("mbuf accounting clean (no leaks)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vigpol:", err)
	os.Exit(1)
}
