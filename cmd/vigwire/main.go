// Command vigwire plays the tester's side of a NAT running in wire
// mode (vignat -transport udp|unix): it owns both ends of the wire,
// generating MoonGen-style flows into the NAT's internal port,
// collecting the translated packets off its external port, answering
// them as the remote servers would, and checking every observation
// against the executable RFC 3022 oracle — the same differential
// check the in-memory conformance suite runs, now across process
// boundaries and a real kernel transport.
//
// A typical two-process session (see the README's transport section):
//
//	vignat -verify=false -transport udp \
//	    -int-local 127.0.0.1:19001 -int-peer 127.0.0.1:29001 \
//	    -ext-local 127.0.0.1:19101 -ext-peer 127.0.0.1:29101 &
//	vigwire -transport udp \
//	    -int-local 127.0.0.1:29001 -int-peer 127.0.0.1:19001 \
//	    -ext-local 127.0.0.1:29101 -ext-peer 127.0.0.1:19101
//
// vigwire exits 0 iff every outbound packet came back translated
// exactly as the spec demands and every reply was un-translated back
// to the right internal host — including the return path, which is
// where NAT bugs hide.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vignat/internal/flow"
	"vignat/internal/moongen"
	"vignat/internal/nat"
	"vignat/internal/nat/stateless"
	"vignat/internal/netstack"
	"vignat/internal/testbed"
	"vignat/internal/vigor/spec"
)

func newWire(transport, local, peer string) (testbed.Wire, error) {
	switch transport {
	case "udp":
		w, err := testbed.NewUDPWire(local)
		if err != nil {
			return nil, err
		}
		if err := w.SetPeer(peer); err != nil {
			_ = w.Close()
			return nil, err
		}
		return w, nil
	case "unix":
		w, err := testbed.NewUnixWire(local)
		if err != nil {
			return nil, err
		}
		if err := w.SetPeer(peer); err != nil {
			_ = w.Close()
			return nil, err
		}
		return w, nil
	}
	return nil, fmt.Errorf("unknown transport %q (want udp or unix)", transport)
}

func main() {
	transport := flag.String("transport", "udp", "wire backend: udp or unix (must match the NAT's)")
	intLocal := flag.String("int-local", "", "this process's internal-side endpoint (the NAT's -int-peer)")
	intPeer := flag.String("int-peer", "", "the NAT's internal port address (its -int-local)")
	extLocal := flag.String("ext-local", "", "this process's external-side endpoint (the NAT's -ext-peer)")
	extPeer := flag.String("ext-peer", "", "the NAT's external port address (its -ext-local)")
	flows := flag.Int("flows", 64, "concurrent flows to generate")
	packets := flag.Int("packets", 1024, "outbound packets to send")
	capacity := flag.Int("capacity", nat.DefaultCapacity, "the NAT's flow-table capacity (oracle state bound)")
	timeout := flag.Duration("timeout", 2*time.Second, "the NAT's Texp (oracle expiry; keep it well above the run length)")
	extIPFlag := flag.String("ext-ip", "198.18.1.1", "the NAT's external IP")
	portBase := flag.Int("port-base", nat.DefaultPortBase, "first external port the NAT hands out")
	recvTimeout := flag.Duration("recv-timeout", 5*time.Second, "per-packet wait before declaring the NAT dropped it")
	flag.Parse()

	if err := run(*transport, *intLocal, *intPeer, *extLocal, *extPeer,
		*flows, *packets, *capacity, *timeout, *extIPFlag, *portBase, *recvTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "vigwire: %v\n", err)
		os.Exit(1)
	}
}

func parseAddr(s string) (flow.Addr, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IP %q", s)
	}
	return flow.MakeAddr(byte(a), byte(b), byte(c), byte(d)), nil
}

func run(transport, intLocal, intPeer, extLocal, extPeer string,
	nFlows, nPackets, capacity int, texp time.Duration, extIPStr string,
	portBase int, recvTimeout time.Duration) error {
	if intLocal == "" || intPeer == "" || extLocal == "" || extPeer == "" {
		return fmt.Errorf("all four endpoints are required: -int-local -int-peer -ext-local -ext-peer")
	}
	extIP, err := parseAddr(extIPStr)
	if err != nil {
		return err
	}
	intWire, err := newWire(transport, intLocal, intPeer)
	if err != nil {
		return fmt.Errorf("internal wire: %w", err)
	}
	defer intWire.Close()
	extWire, err := newWire(transport, extLocal, extPeer)
	if err != nil {
		return fmt.Errorf("external wire: %w", err)
	}
	defer extWire.Close()

	specs, err := moongen.MakeFlows(0, nFlows, 0, 17)
	if err != nil {
		return err
	}
	oracle := spec.NewOracle(capacity, texp.Nanoseconds(), extIP, uint16(portBase), capacity)

	// Phase 1 — outbound, lock-step: each internal packet must emerge on
	// the external wire rewritten exactly as Fig. 6 demands. The
	// external tuple the NAT picked is adopted per flow for the replies.
	extTuple := make([]flow.ID, nFlows)
	known := make([]bool, nFlows)
	recvBuf := make([]byte, 4096)
	frame := make([]byte, 2048)
	var pkt netstack.Packet
	for i := 0; i < nPackets; i++ {
		f := &specs[i%nFlows]
		out := frame[:len(f.Frame())]
		copy(out, f.Frame()) // the NAT rewrites in place on its side; keep ours pristine
		if !intWire.Send(out, 0) {
			return fmt.Errorf("outbound packet %d: send failed (is the NAT up?)", i)
		}
		obs := spec.Observed{Verdict: stateless.VerdictDrop}
		if n, ok := extWire.Recv(recvBuf, recvTimeout); ok {
			if err := pkt.Parse(recvBuf[:n]); err != nil {
				return fmt.Errorf("outbound packet %d: NAT emitted an unparseable frame: %v", i, err)
			}
			obs = spec.Observed{Verdict: stateless.VerdictToExternal, Tuple: pkt.FlowID()}
			extTuple[i%nFlows] = pkt.FlowID()
			known[i%nFlows] = true
		}
		if err := oracle.Step(f.ID, true, true, time.Now().UnixNano(), obs); err != nil {
			return fmt.Errorf("outbound packet %d diverged from RFC 3022: %w", i, err)
		}
	}

	// Phase 2 — return traffic: every established flow answers once,
	// and the NAT must translate it back to the right internal host.
	// This is the leg that catches inverted-lookup and
	// unsolicited-forwarding bugs.
	replies := 0
	for fi := 0; fi < nFlows; fi++ {
		if !known[fi] {
			continue
		}
		reply := moongen.ReplyFrame(frame, extTuple[fi])
		if !extWire.Send(reply, 0) {
			return fmt.Errorf("reply for flow %d: send failed", fi)
		}
		obs := spec.Observed{Verdict: stateless.VerdictDrop}
		if n, ok := intWire.Recv(recvBuf, recvTimeout); ok {
			if err := pkt.Parse(recvBuf[:n]); err != nil {
				return fmt.Errorf("reply for flow %d: NAT emitted an unparseable frame: %v", fi, err)
			}
			obs = spec.Observed{Verdict: stateless.VerdictToInternal, Tuple: pkt.FlowID()}
		}
		if err := oracle.Step(extTuple[fi].Reverse(), false, true, time.Now().UnixNano(), obs); err != nil {
			return fmt.Errorf("reply for flow %d diverged from RFC 3022: %w", fi, err)
		}
		replies++
	}

	fmt.Printf("vigwire: %d outbound + %d return packets over %s, RFC 3022 oracle clean (%d sessions)\n",
		nPackets, replies, transport, oracle.Size())
	return nil
}
