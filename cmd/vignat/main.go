// Command vignat runs the verified NAT on the simulated DPDK substrate:
// two multi-queue ports, the shared nf.Pipeline engine, and a built-in
// traffic source standing in for the wire (all supplied by
// nfkit.Main). It prints periodic statistics, demonstrating the full
// production composition (netstack ⊕ libVig flow table ⊕ dpdk ports ⊕
// verified stateless logic ⊕ nf engine).
//
// Usage:
//
//	vignat [-flows N] [-packets N] [-timeout D] [-capacity N]
//	       [-shards N] [-workers N] [-burst N] [-amortized]
//	       [-metrics addr] [-verify]
//
// -shards > 1 partitions the NAT RSS-style: each shard owns a disjoint
// slice of the flow table and of the external port range, so steering
// by flow hash (outbound) and by port range (inbound) always lands a
// session on the same shard with no locks.
//
// -workers > 1 (default: one per shard) gives each worker its own RX/TX
// queue pair on both ports, its own per-queue mempools, and its own
// goroutine running the run-to-completion loop — deliver, poll, drain —
// with no synchronization anywhere on the packet path.
//
// With -verify the binary first runs the verification pipeline and
// refuses to start on a failed proof — the deployment story the paper
// argues for: the artifact you run is the artifact you proved.
package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"vignat/internal/core"
	"vignat/internal/libvig"
	"vignat/internal/moongen"
	"vignat/internal/nat"
	"vignat/internal/nf/nfkit"
)

func main() {
	flows := flag.Int("flows", 1000, "number of concurrent flows to simulate")
	verify := flag.Bool("verify", true, "run the verification pipeline before starting")

	nfkit.Main(nfkit.App{
		Name:            "vignat",
		DefaultCapacity: nat.DefaultCapacity,
		Build: func(o *nfkit.Options, clock libvig.Clock) (*nfkit.Run, error) {
			cfg := core.DefaultConfig(core.IPv4(198, 18, 1, 1))
			cfg.Timeout = o.Timeout
			cfg.Capacity = o.Capacity

			if *verify {
				rep, err := core.Verify(cfg, 0)
				if err != nil {
					return nil, err
				}
				fmt.Println(rep.Summary())
				if !rep.OK() {
					return nil, fmt.Errorf("refusing to start an unproven NAT")
				}
			}

			n, err := nat.NewSharded(cfg, clock, o.Shards)
			if err != nil {
				return nil, err
			}
			specs, err := moongen.MakeFlows(0, *flows, 0, 17)
			if err != nil {
				return nil, err
			}
			frames := make([][]byte, len(specs))
			for f := range specs {
				frames[f] = specs[f].Frame()
			}

			return &nfkit.Run{
				NF:             n,
				ShardOf:        n.ShardOf,
				Snapshot:       n.StatsSnapshot,
				Frames:         frames,
				FromInternal:   true,
				InternalPortID: cfg.InternalPort,
				ExternalPortID: cfg.ExternalPort,
				Banner: fmt.Sprintf("vignat: CAP=%d Texp=%v EXT_IP=%v, %d shards, %d workers, burst %d, %d flows, %d packets",
					n.Capacity(), cfg.Timeout, cfg.ExternalIP, n.Shards(), o.Workers, o.Burst, *flows, o.Packets),
				Report: func(w io.Writer, r *nfkit.RunReport) error {
					st := n.Stats()
					fmt.Fprintf(w, "processed %d packets in %v (%.2f Mpps offered)\n",
						st.Processed, r.Elapsed.Round(time.Millisecond), r.Mpps(st.Processed))
					fmt.Fprintf(w, "  forwarded out: %-10d dropped: %d\n", st.ForwardedOut, st.Dropped)
					fmt.Fprintf(w, "  flows created: %-10d expired: %d  live: %d\n",
						st.FlowsCreated, st.FlowsExpired, n.Flows())
					return nil
				},
			}, nil
		},
	})
}
