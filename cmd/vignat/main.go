// Command vignat runs the verified NAT on the simulated DPDK substrate:
// two multi-queue ports, the shared nf.Pipeline engine, and a built-in
// traffic source standing in for the wire. It prints periodic
// statistics, demonstrating the full production composition (netstack ⊕
// libVig flow table ⊕ dpdk ports ⊕ verified stateless logic ⊕ nf
// engine).
//
// Usage:
//
//	vignat [-flows N] [-packets N] [-timeout D] [-capacity N]
//	       [-shards N] [-workers N] [-burst N] [-verify]
//
// -shards > 1 partitions the NAT RSS-style: each shard owns a disjoint
// slice of the flow table and of the external port range, so steering
// by flow hash (outbound) and by port range (inbound) always lands a
// session on the same shard with no locks.
//
// -workers > 1 (default: one per shard) gives each worker its own RX/TX
// queue pair on both ports, its own per-queue mempools, and its own
// goroutine running the run-to-completion loop — deliver, poll, drain —
// with no synchronization anywhere on the packet path.
//
// With -verify the binary first runs the verification pipeline and
// refuses to start on a failed proof — the deployment story the paper
// argues for: the artifact you run is the artifact you proved.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"vignat/internal/core"
	"vignat/internal/dpdk"
	"vignat/internal/libvig"
	"vignat/internal/moongen"
	"vignat/internal/nat"
	"vignat/internal/nf"
)

func main() {
	flows := flag.Int("flows", 1000, "number of concurrent flows to simulate")
	packets := flag.Int("packets", 200000, "packets to push through the NAT")
	timeout := flag.Duration("timeout", 2*time.Second, "flow expiry (Texp)")
	capacity := flag.Int("capacity", nat.DefaultCapacity, "flow table capacity (CAP)")
	shards := flag.Int("shards", 1, "NAT shards (disjoint flow tables over partitioned port ranges)")
	workers := flag.Int("workers", 0, "run-to-completion workers / RSS queue pairs (0 = one per shard)")
	burst := flag.Int("burst", nf.DefaultBurst, "RX/TX burst size")
	verify := flag.Bool("verify", true, "run the verification pipeline before starting")
	metricsAddr := flag.String("metrics", "", "serve StatsSnapshot over HTTP/expvar on this address (e.g. :9090)")
	flag.Parse()

	cfg := core.DefaultConfig(core.IPv4(198, 18, 1, 1))
	cfg.Timeout = *timeout
	cfg.Capacity = *capacity

	if *verify {
		rep, err := core.Verify(cfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Summary())
		if !rep.OK() {
			fatal(fmt.Errorf("refusing to start an unproven NAT"))
		}
	}

	clock := libvig.NewVirtualClock(0)
	n, err := nat.NewSharded(cfg, clock, *shards)
	if err != nil {
		fatal(err)
	}
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = *shards
	}
	if nWorkers < 1 || nWorkers > *shards {
		fatal(fmt.Errorf("workers must be in [1,%d] (one queue pair per worker, shards spread across workers)", *shards))
	}

	// Two multi-queue ports, one queue pair and one mempool per worker.
	intPort, intPools, err := nf.NewWorkerPorts(cfg.InternalPort, nWorkers, 4096/nWorkers)
	if err != nil {
		fatal(err)
	}
	extPort, extPools, err := nf.NewWorkerPorts(cfg.ExternalPort, nWorkers, 4096/nWorkers)
	if err != nil {
		fatal(err)
	}

	pipe, err := nf.NewPipeline(n, nf.Config{
		Internal: intPort,
		External: extPort,
		Burst:    *burst,
		Workers:  nWorkers,
		Clock:    clock,
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		m, err := nf.ServeMetrics(*metricsAddr,
			nf.MetricSource{Name: "vignat", Snapshot: n.StatsSnapshot})
		if err != nil {
			fatal(err)
		}
		defer m.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars)\n", m.Addr())
	}

	specs, err := moongen.MakeFlows(0, *flows, 0, 17)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("vignat: CAP=%d Texp=%v EXT_IP=%v, %d shards, %d workers, burst %d, %d flows, %d packets\n",
		n.Capacity(), cfg.Timeout, cfg.ExternalIP, n.Shards(), nWorkers, *burst, *flows, *packets)

	// Pre-steer the packet sequence per worker, so each worker's wire
	// driver delivers only frames RSS places on its own queue.
	workerOf := make([]int, len(specs))
	for f := range specs {
		workerOf[f] = n.ShardOf(specs[f].Frame(), true) % nWorkers
	}
	lists := make([][]int, nWorkers)
	for i := 0; i < *packets; i++ {
		f := i % len(specs)
		lists[workerOf[f]] = append(lists[workerOf[f]], f)
	}

	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drain := make([]*dpdk.Mbuf, *burst)
			list := lists[w]
			for off := 0; off < len(list); off += *burst {
				c := *burst
				if off+c > len(list) {
					c = len(list) - off
				}
				// Wire side: deliver a burst straight onto this worker's
				// queue (the list is pre-steered; a NIC's RSS hash is
				// hardware, not a per-packet software cost).
				for j := 0; j < c; j++ {
					clock.Advance(1000) // 1 µs between arrivals
					intPort.DeliverRxQueue(w, specs[list[off+j]].Frame(), clock.Now())
				}
				// NF side: one run-to-completion iteration.
				if _, err := pipe.PollWorker(w); err != nil {
					errs[w] = err
					return
				}
				// Wire side: drain transmitted frames back into their pools.
				for {
					k := extPort.DrainTxQueue(w, drain)
					if k == 0 {
						break
					}
					for i := 0; i < k; i++ {
						if err := drain[i].Pool().Free(drain[i]); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	st := n.Stats()
	ps := pipe.Stats()
	is, es := intPort.Stats(), extPort.Stats()
	fmt.Printf("processed %d packets in %v (%.2f Mpps offered)\n",
		st.Processed, elapsed.Round(time.Millisecond),
		float64(st.Processed)/elapsed.Seconds()/1e6)
	fmt.Printf("  forwarded out: %-10d dropped: %d\n", st.ForwardedOut, st.Dropped)
	fmt.Printf("  flows created: %-10d expired: %d  live: %d\n",
		st.FlowsCreated, st.FlowsExpired, n.Flows())
	nf.FprintEngineReport(os.Stdout, ps, n.StatsSnapshot())
	fmt.Printf("  int port: rx=%d rx_dropped=%d | ext port: tx=%d tx_dropped=%d\n",
		is.RxPackets, is.RxDropped, es.TxPackets, es.TxDropped)
	if err := nf.MbufAccounting(intPort.RxQueueLen()+extPort.TxQueueLen(),
		append(append([]*dpdk.Mempool(nil), intPools...), extPools...)...); err != nil {
		fatal(err)
	}
	fmt.Println("mbuf accounting clean (no leaks)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vignat:", err)
	os.Exit(1)
}
