// Command vignat runs the verified NAT on the simulated DPDK substrate:
// two ports, the shared nf.Pipeline engine, and a built-in traffic
// source standing in for the wire. It prints periodic statistics,
// demonstrating the full production composition (netstack ⊕ libVig flow
// table ⊕ dpdk ports ⊕ verified stateless logic ⊕ nf engine).
//
// Usage:
//
//	vignat [-flows N] [-packets N] [-timeout D] [-capacity N]
//	       [-shards N] [-burst N] [-verify]
//
// -shards > 1 partitions the NAT RSS-style: each shard owns a disjoint
// slice of the flow table and of the external port range, so steering
// by flow hash (outbound) and by port range (inbound) always lands a
// session on the same shard with no locks.
//
// With -verify the binary first runs the verification pipeline and
// refuses to start on a failed proof — the deployment story the paper
// argues for: the artifact you run is the artifact you proved.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vignat/internal/core"
	"vignat/internal/dpdk"
	"vignat/internal/libvig"
	"vignat/internal/moongen"
	"vignat/internal/nat"
	"vignat/internal/nf"
)

func main() {
	flows := flag.Int("flows", 1000, "number of concurrent flows to simulate")
	packets := flag.Int("packets", 200000, "packets to push through the NAT")
	timeout := flag.Duration("timeout", 2*time.Second, "flow expiry (Texp)")
	capacity := flag.Int("capacity", nat.DefaultCapacity, "flow table capacity (CAP)")
	shards := flag.Int("shards", 1, "NAT shards (disjoint flow tables over partitioned port ranges)")
	burst := flag.Int("burst", nf.DefaultBurst, "RX/TX burst size")
	verify := flag.Bool("verify", true, "run the verification pipeline before starting")
	flag.Parse()

	cfg := core.DefaultConfig(core.IPv4(198, 18, 1, 1))
	cfg.Timeout = *timeout
	cfg.Capacity = *capacity

	if *verify {
		rep, err := core.Verify(cfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Summary())
		if !rep.OK() {
			fatal(fmt.Errorf("refusing to start an unproven NAT"))
		}
	}

	clock := libvig.NewVirtualClock(0)
	n, err := nat.NewSharded(cfg, clock, *shards)
	if err != nil {
		fatal(err)
	}

	// Two ports on a shared mempool, as VigNAT configures DPDK.
	pool, err := dpdk.NewMempool(4096)
	if err != nil {
		fatal(err)
	}
	intPort, err := dpdk.NewPort(cfg.InternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		fatal(err)
	}
	extPort, err := dpdk.NewPort(cfg.ExternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		fatal(err)
	}

	pipe, err := nf.NewPipeline(n, nf.Config{
		Internal: intPort,
		External: extPort,
		Burst:    *burst,
		Clock:    clock,
	})
	if err != nil {
		fatal(err)
	}

	specs, err := moongen.MakeFlows(0, *flows, 0, 17)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("vignat: CAP=%d Texp=%v EXT_IP=%v, %d shards, burst %d, %d flows, %d packets\n",
		n.Capacity(), cfg.Timeout, cfg.ExternalIP, n.Shards(), *burst, *flows, *packets)

	drain := make([]*dpdk.Mbuf, *burst)
	start := time.Now()
	sent := 0
	for sent < *packets {
		// Wire side: deliver a burst of frames to the internal port.
		for b := 0; b < *burst && sent < *packets; b++ {
			f := &specs[sent%len(specs)]
			clock.Advance(1000) // 1 µs between arrivals
			intPort.DeliverRx(f.Frame(), clock.Now())
			sent++
		}
		// NF side: one engine iteration.
		if _, err := pipe.Poll(); err != nil {
			fatal(err)
		}
		// Wire side: drain transmitted frames back into the pool.
		for {
			k := extPort.DrainTx(drain)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				if err := pool.Free(drain[i]); err != nil {
					fatal(err)
				}
			}
		}
	}
	elapsed := time.Since(start)

	st := n.Stats()
	ps := pipe.Stats()
	is, es := intPort.Stats(), extPort.Stats()
	fmt.Printf("processed %d packets in %v (%.2f Mpps offered)\n",
		st.Processed, elapsed.Round(time.Millisecond),
		float64(st.Processed)/elapsed.Seconds()/1e6)
	fmt.Printf("  forwarded out: %-10d dropped: %d\n", st.ForwardedOut, st.Dropped)
	fmt.Printf("  flows created: %-10d expired: %d  live: %d\n",
		st.FlowsCreated, st.FlowsExpired, n.Flows())
	fmt.Printf("  engine: polls=%d rx=%d tx=%d tx_freed=%d\n",
		ps.Polls, ps.RxPackets, ps.TxPackets, ps.TxFreed)
	fmt.Printf("  int port: rx=%d rx_dropped=%d | ext port: tx=%d tx_dropped=%d\n",
		is.RxPackets, is.RxDropped, es.TxPackets, es.TxDropped)
	if pool.InUse() != intPort.RxQueueLen()+extPort.TxQueueLen() {
		fatal(fmt.Errorf("mbuf leak detected: %d in use", pool.InUse()))
	}
	fmt.Println("mbuf accounting clean (no leaks)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vignat:", err)
	os.Exit(1)
}
