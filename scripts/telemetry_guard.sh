#!/usr/bin/env bash
# Telemetry bench guard: holds the observability layer to its budget.
#
#   telemetry_guard.sh FRESH.json [BASELINE.json]
#
# Fails if, in the fresh run,
#   1. the telemetry-enabled gateway overhead exceeds 3%,
#   2. either side of the NAT fast/slow histogram split is empty, or
#   3. the telemetry-disabled gateway ns/pkt regressed >3% against the
#      committed baseline (skipped when no baseline is given or with
#      TELEMETRY_GUARD_NO_BASELINE=1 — e.g. while re-recording the
#      baseline on a new runner class, where absolute ns/pkt moves for
#      reasons that are not code).
set -euo pipefail

fresh=${1:?usage: telemetry_guard.sh FRESH.json [BASELINE.json]}
baseline=${2:-}

# First numeric value of a top-level-unique key in the indented JSON.
val() {
    awk -v key="\"$2\":" '$1 == key {gsub(/,/, "", $2); print $2; exit}' "$1"
}

overhead=$(val "$fresh" overhead_pct)
fast=$(val "$fresh" fast_pkts)
slow=$(val "$fresh" slow_pkts)
off=$(val "$fresh" ns_per_pkt_off)
for v in "$overhead" "$fast" "$slow" "$off"; do
    [ -n "$v" ] || { echo "telemetry guard: $fresh is missing a required field" >&2; exit 1; }
done

if awk -v o="$overhead" 'BEGIN {exit !(o > 3.0)}'; then
    echo "telemetry guard: enabled overhead ${overhead}% exceeds the 3% budget" >&2
    exit 1
fi
if [ "$fast" -eq 0 ] || [ "$slow" -eq 0 ]; then
    echo "telemetry guard: fast/slow split empty (fast=$fast slow=$slow)" >&2
    exit 1
fi

if [ -n "$baseline" ] && [ "${TELEMETRY_GUARD_NO_BASELINE:-0}" != "1" ]; then
    base_off=$(val "$baseline" ns_per_pkt_off)
    [ -n "$base_off" ] || { echo "telemetry guard: $baseline is missing ns_per_pkt_off" >&2; exit 1; }
    if awk -v f="$off" -v b="$base_off" 'BEGIN {exit !(100 * (f - b) / b > 3.0)}'; then
        echo "telemetry guard: telemetry-disabled gateway regressed: ${off} ns/pkt vs baseline ${base_off} (>3%)" >&2
        exit 1
    fi
    echo "telemetry guard: ok (overhead ${overhead}%, fast=$fast slow=$slow, off ${off} ns/pkt vs baseline ${base_off})"
else
    echo "telemetry guard: ok (overhead ${overhead}%, fast=$fast slow=$slow, off ${off} ns/pkt, baseline check skipped)"
fi
