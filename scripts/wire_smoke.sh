#!/usr/bin/env bash
# Two-process UDP smoke test: a vignat daemon in wire mode and the
# vigwire generator/sink exchange real packets over loopback UDP
# sockets — separate processes, kernel transport, no shared memory.
# The run passes only if vigwire's RFC 3022 oracle accepts every
# observed translation, including the return traffic, and the NAT
# shuts down cleanly (zero drops, no mbuf leaks) on SIGINT.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
nat_pid=""
cleanup() {
    [ -n "$nat_pid" ] && kill "$nat_pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/vignat" ./cmd/vignat
go build -o "$bin/vigwire" ./cmd/vigwire

# -duration is a watchdog: the NAT exits on its own even if this script
# dies before delivering SIGINT.
"$bin/vignat" -verify=false -transport udp \
    -int-local 127.0.0.1:19001 -int-peer 127.0.0.1:29001 \
    -ext-local 127.0.0.1:19101 -ext-peer 127.0.0.1:29101 \
    -duration 60s &
nat_pid=$!

sleep 1 # let the NAT bind its sockets

"$bin/vigwire" -transport udp \
    -int-local 127.0.0.1:29001 -int-peer 127.0.0.1:19001 \
    -ext-local 127.0.0.1:29101 -ext-peer 127.0.0.1:19101 \
    -flows 64 -packets 1024

kill -INT "$nat_pid"
wait "$nat_pid"
nat_pid=""
echo "wire smoke: OK"
