#!/usr/bin/env bash
# Two-process UDP smoke test: a vignat daemon in wire mode and the
# vigwire generator/sink exchange real packets over loopback UDP
# sockets — separate processes, kernel transport, no shared memory.
# The run passes only if vigwire's RFC 3022 oracle accepts every
# observed translation, including the return traffic, and the NAT
# shuts down cleanly (zero drops, no mbuf leaks) on SIGINT.
#
# The NAT also serves /metrics (telemetry on), and the script scrapes
# the Prometheus endpoint while traffic flows: the processed counter
# must be monotone across scrapes, the drop-class reason counters must
# sum to nf_dropped_total, and the per-worker poll histogram must be
# populated — the live-observability half of the verified-path
# telemetry acceptance.
set -euo pipefail

cd "$(dirname "$0")/.."

metrics_addr=127.0.0.1:19890
bin=$(mktemp -d)
nat_pid=""
wire_pid=""
cleanup() {
    [ -n "$wire_pid" ] && kill "$wire_pid" 2>/dev/null || true
    [ -n "$nat_pid" ] && kill "$nat_pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/vignat" ./cmd/vignat
go build -o "$bin/vigwire" ./cmd/vigwire

# -duration is a watchdog: the NAT exits on its own even if this script
# dies before delivering SIGINT.
"$bin/vignat" -verify=false -transport udp \
    -int-local 127.0.0.1:19001 -int-peer 127.0.0.1:29001 \
    -ext-local 127.0.0.1:19101 -ext-peer 127.0.0.1:29101 \
    -metrics "$metrics_addr" -telemetry 1 \
    -duration 60s &
nat_pid=$!

sleep 1 # let the NAT bind its sockets

scrape() {
    curl -fsS -H 'Accept: text/plain; version=0.0.4' "http://$metrics_addr/metrics"
}

# One value from a scrape document: first sample line matching the
# pattern, second field.
metric() {
    printf '%s\n' "$1" | awk -v pat="$2" '$0 ~ pat {print $2; exit}'
}

"$bin/vigwire" -transport udp \
    -int-local 127.0.0.1:29001 -int-peer 127.0.0.1:19001 \
    -ext-local 127.0.0.1:29101 -ext-peer 127.0.0.1:19101 \
    -flows 64 -packets 8192 &
wire_pid=$!

# Mid-traffic scrapes: nf_processed_total must never move backwards.
prev=0
scrapes=0
while kill -0 "$wire_pid" 2>/dev/null && [ "$scrapes" -lt 50 ]; do
    doc=$(scrape)
    cur=$(metric "$doc" '^nf_processed_total\{')
    [ -n "$cur" ] || { echo "wire smoke: nf_processed_total missing from scrape" >&2; exit 1; }
    if [ "$cur" -lt "$prev" ]; then
        echo "wire smoke: processed counter went backwards ($prev -> $cur)" >&2
        exit 1
    fi
    prev=$cur
    scrapes=$((scrapes + 1))
    sleep 0.1
done
wait "$wire_pid"
wire_pid=""
if [ "$scrapes" -lt 2 ]; then
    echo "wire smoke: only $scrapes mid-traffic scrapes landed; slow the generator down" >&2
    exit 1
fi

# Quiesced scrape: the monotone chain extends to the final value, the
# drop-class reasons sum to the engine's dropped counter (both are zero
# in a clean run — the equality is the check, not the magnitude), and
# telemetry histograms saw the traffic.
doc=$(scrape)
final=$(metric "$doc" '^nf_processed_total\{')
if [ "$final" -lt "$prev" ] || [ "$final" -lt 8192 ]; then
    echo "wire smoke: final processed count $final (mid-traffic max $prev, sent 8192)" >&2
    exit 1
fi
dropped=$(metric "$doc" '^nf_dropped_total\{')
drop_sum=$(printf '%s\n' "$doc" | awk '/^nf_reason_total\{.*class="drop"/ {s+=$2} END {printf "%d", s}')
if [ "$drop_sum" -ne "$dropped" ]; then
    echo "wire smoke: drop-class reasons sum to $drop_sum, nf_dropped_total is $dropped" >&2
    exit 1
fi
polls=$(metric "$doc" '^nf_poll_ns_count')
if [ -z "$polls" ] || [ "$polls" -eq 0 ]; then
    echo "wire smoke: poll histogram empty with telemetry on" >&2
    exit 1
fi
echo "wire smoke: $scrapes mid-traffic scrapes, processed=$final dropped=$dropped (reason sum $drop_sum), polls=$polls"

kill -INT "$nat_pid"
wait "$nat_pid"
nat_pid=""
echo "wire smoke: OK"
