#!/usr/bin/env bash
# Two-process UDP smoke test: a vignat daemon in wire mode and the
# vigwire generator/sink exchange real packets over loopback UDP
# sockets — separate processes, kernel transport, no shared memory.
# The run passes only if vigwire's RFC 3022 oracle accepts every
# observed translation, including the return traffic, and the NAT
# shuts down cleanly (zero drops, no mbuf leaks) on SIGINT.
#
# The NAT also serves /metrics (telemetry on), and the script scrapes
# the Prometheus endpoint while traffic flows: the processed counter
# must be monotone across scrapes, the drop-class reason counters must
# sum to nf_dropped_total, and the per-worker poll histogram must be
# populated — the live-observability half of the verified-path
# telemetry acceptance.
#
# The control plane rides the same run: the NAT mounts /control/v1 on
# the metrics mux, and mid-exchange the script reshards it 2 → 4 → 3
# workers — the oracle must stay clean across both live migrations.
# Every control transaction is recorded in reshard_trace.json (JSONL),
# the artifact CI uploads. Two further legs then hold a viglb and a
# vigpol wire daemon under open-loop traffic (vigblast) while a live
# backend drain/add and a rate resize land over /control/v1.
set -euo pipefail

cd "$(dirname "$0")/.."

metrics_addr=127.0.0.1:19890
lb_metrics=127.0.0.1:19891
pol_metrics=127.0.0.1:19892
trace=reshard_trace.json
bin=$(mktemp -d)
nat_pid=""
wire_pid=""
lb_pid=""
pol_pid=""
blast_pid=""
cleanup() {
    [ -n "$blast_pid" ] && kill "$blast_pid" 2>/dev/null || true
    [ -n "$wire_pid" ] && kill "$wire_pid" 2>/dev/null || true
    [ -n "$nat_pid" ] && kill "$nat_pid" 2>/dev/null || true
    [ -n "$lb_pid" ] && kill "$lb_pid" 2>/dev/null || true
    [ -n "$pol_pid" ] && kill "$pol_pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/vignat" ./cmd/vignat
go build -o "$bin/vigwire" ./cmd/vigwire
go build -o "$bin/viglb" ./cmd/viglb
go build -o "$bin/vigpol" ./cmd/vigpol
go build -o "$bin/vigblast" ./cmd/vigblast

# One numeric field from a JSON body (flat bodies only — good enough
# for the control API's replies without a jq dependency).
jget() {
    printf '%s' "$1" | grep -o "\"$2\":[0-9]*" | head -1 | cut -d: -f2
}

# Record one control transaction in the trace artifact.
: > "$trace"
rec() {
    printf '{"ts":"%s","verb":"%s","response":%s}\n' \
        "$(date -u +%FT%TZ)" "$1" "$2" >> "$trace"
}

# --- Leg 1: NAT + oracle exchange, resharded live mid-traffic -------

# -duration is a watchdog: the NAT exits on its own even if this script
# dies before delivering SIGINT.
# -capacity 65532 divides evenly into 2, 3, and 4 shards — the NAT's
# external port ranges must stay aligned across every reshard target.
"$bin/vignat" -verify=false -transport udp \
    -shards 2 -workers 2 -max-workers 4 -capacity 65532 \
    -int-local 127.0.0.1:19001 -int-peer 127.0.0.1:29001 \
    -ext-local 127.0.0.1:19101 -ext-peer 127.0.0.1:29101 \
    -metrics "$metrics_addr" -telemetry 1 -control \
    -duration 60s &
nat_pid=$!

sleep 1 # let the NAT bind its sockets

scrape() {
    curl -fsS -H 'Accept: text/plain; version=0.0.4' "http://$metrics_addr/metrics"
}

# One value from a scrape document: first sample line matching the
# pattern, second field.
metric() {
    printf '%s\n' "$1" | awk -v pat="$2" '$0 ~ pat {print $2; exit}'
}

status=$(curl -fsS "http://$metrics_addr/control/v1/status")
rec "GET status" "$status"
if [ "$(jget "$status" workers)" -ne 2 ]; then
    echo "wire smoke: control status reports $(jget "$status" workers) workers at launch, want 2" >&2
    exit 1
fi

"$bin/vigwire" -transport udp \
    -int-local 127.0.0.1:29001 -int-peer 127.0.0.1:19001 \
    -ext-local 127.0.0.1:29101 -ext-peer 127.0.0.1:19101 \
    -capacity 65532 -flows 64 -packets 8192 &
wire_pid=$!

# Mid-traffic scrapes: nf_processed_total must never move backwards.
# At scrape 3 the control plane grows the NAT to 4 workers, at scrape
# 12 it shrinks to 3 — two live shard-state migrations under the
# oracle's nose.
prev=0
scrapes=0
while kill -0 "$wire_pid" 2>/dev/null && [ "$scrapes" -lt 50 ]; do
    doc=$(scrape)
    cur=$(metric "$doc" '^nf_processed_total\{')
    [ -n "$cur" ] || { echo "wire smoke: nf_processed_total missing from scrape" >&2; exit 1; }
    if [ "$cur" -lt "$prev" ]; then
        echo "wire smoke: processed counter went backwards ($prev -> $cur)" >&2
        exit 1
    fi
    prev=$cur
    scrapes=$((scrapes + 1))
    for step in "3 4" "12 3"; do
        set -- $step
        if [ "$scrapes" -eq "$1" ]; then
            reply=$(curl -fsS -X POST -d "{\"workers\":$2}" "http://$metrics_addr/control/v1/workers")
            rec "POST workers $2" "$reply"
            if [ "$(jget "$reply" workers)" -ne "$2" ]; then
                echo "wire smoke: workers verb replied $reply, want $2 workers" >&2
                exit 1
            fi
        fi
    done
    sleep 0.1
done
wait "$wire_pid"
wire_pid=""
if [ "$scrapes" -lt 13 ]; then
    echo "wire smoke: only $scrapes mid-traffic scrapes landed; the reshards did not run mid-exchange" >&2
    exit 1
fi

status=$(curl -fsS "http://$metrics_addr/control/v1/status")
rec "GET status" "$status"
if [ "$(jget "$status" workers)" -ne 3 ]; then
    echo "wire smoke: $(jget "$status" workers) workers after the 4→3 reshard, want 3" >&2
    exit 1
fi

# Quiesced scrape: the monotone chain extends to the final value, the
# drop-class reasons sum to the engine's dropped counter (both are zero
# in a clean run — the equality is the check, not the magnitude), and
# telemetry histograms saw the traffic.
doc=$(scrape)
final=$(metric "$doc" '^nf_processed_total\{')
if [ "$final" -lt "$prev" ] || [ "$final" -lt 8192 ]; then
    echo "wire smoke: final processed count $final (mid-traffic max $prev, sent 8192)" >&2
    exit 1
fi
dropped=$(metric "$doc" '^nf_dropped_total\{')
drop_sum=$(printf '%s\n' "$doc" | awk '/^nf_reason_total\{.*class="drop"/ {s+=$2} END {printf "%d", s}')
if [ "$drop_sum" -ne "$dropped" ]; then
    echo "wire smoke: drop-class reasons sum to $drop_sum, nf_dropped_total is $dropped" >&2
    exit 1
fi
polls=$(metric "$doc" '^nf_poll_ns_count')
if [ -z "$polls" ] || [ "$polls" -eq 0 ]; then
    echo "wire smoke: poll histogram empty with telemetry on" >&2
    exit 1
fi
echo "wire smoke: $scrapes mid-traffic scrapes, processed=$final dropped=$dropped (reason sum $drop_sum), polls=$polls, oracle clean across 2→4→3 reshard"

kill -INT "$nat_pid"
wait "$nat_pid"
nat_pid=""

# --- Leg 2: LB backend drain/add under live traffic -----------------

"$bin/viglb" -transport udp -shards 2 -workers 2 -backends 4 -churn=false \
    -int-local 127.0.0.1:19201 -ext-local 127.0.0.1:19301 \
    -metrics "$lb_metrics" -control -duration 45s &
lb_pid=$!
sleep 1

"$bin/vigblast" -kind lb -peer 127.0.0.1:19301 -flows 64 -packets 3000 -interval 1ms &
blast_pid=$!
sleep 0.5

status=$(curl -fsS "http://$lb_metrics/control/v1/status")
rec "GET lb status" "$status"
live=$(printf '%s' "$status" | grep -o '"index":' | wc -l)
if [ "$live" -ne 4 ]; then
    echo "wire smoke: LB status lists $live backends, want 4" >&2
    exit 1
fi
reply=$(curl -fsS -X POST -d '{"op":"drain","index":0}' "http://$lb_metrics/control/v1/lb/backends")
rec "POST lb drain 0" "$reply"
if [ "$(jget "$reply" live)" -ne 3 ]; then
    echo "wire smoke: drain left $(jget "$reply" live) backends live, want 3" >&2
    exit 1
fi
reply=$(curl -fsS -X POST -d '{"op":"add","ip":"10.9.9.99"}' "http://$lb_metrics/control/v1/lb/backends")
rec "POST lb add" "$reply"
if [ "$(jget "$reply" live)" -ne 4 ]; then
    echo "wire smoke: add left $(jget "$reply" live) backends live, want 4" >&2
    exit 1
fi
reply=$(curl -fsS -X POST -d '{"op":"heartbeat","index":1}' "http://$lb_metrics/control/v1/lb/backends")
rec "POST lb heartbeat 1" "$reply"

wait "$blast_pid"
blast_pid=""
doc=$(curl -fsS -H 'Accept: text/plain; version=0.0.4' "http://$lb_metrics/metrics")
lb_processed=$(metric "$doc" '^nf_processed_total\{')
if [ -z "$lb_processed" ] || [ "$lb_processed" -eq 0 ]; then
    echo "wire smoke: LB processed nothing under the blast" >&2
    exit 1
fi
kill -INT "$lb_pid"
wait "$lb_pid"
lb_pid=""
echo "wire smoke: LB drained+re-added a backend mid-traffic (processed=$lb_processed), clean shutdown"

# --- Leg 3: policer rate resize under live traffic ------------------

"$bin/vigpol" -transport udp -shards 2 -workers 2 \
    -int-local 127.0.0.1:19401 -ext-local 127.0.0.1:19501 \
    -metrics "$pol_metrics" -control -duration 45s &
pol_pid=$!
sleep 1

"$bin/vigblast" -kind policer -peer 127.0.0.1:19501 -flows 32 -packets 3000 -interval 1ms &
blast_pid=$!
sleep 0.5

reply=$(curl -fsS -X POST -d '{"rate":500000,"burst":100000}' "http://$pol_metrics/control/v1/policer/resize")
rec "POST policer resize" "$reply"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"rate":0,"burst":100}' "http://$pol_metrics/control/v1/policer/resize")
if [ "$code" -ne 400 ]; then
    echo "wire smoke: zero-rate resize returned HTTP $code, want 400" >&2
    exit 1
fi
reply=$(curl -fsS -X POST -d '{"rate":1000000,"burst":16384}' "http://$pol_metrics/control/v1/policer/resize")
rec "POST policer resize back" "$reply"

wait "$blast_pid"
blast_pid=""
doc=$(curl -fsS -H 'Accept: text/plain; version=0.0.4' "http://$pol_metrics/metrics")
pol_processed=$(metric "$doc" '^nf_processed_total\{')
if [ -z "$pol_processed" ] || [ "$pol_processed" -eq 0 ]; then
    echo "wire smoke: policer processed nothing under the blast" >&2
    exit 1
fi
kill -INT "$pol_pid"
wait "$pol_pid"
pol_pid=""
echo "wire smoke: policer resized live (processed=$pol_processed), bad resize rejected with 400, clean shutdown"

echo "wire smoke: OK ($(wc -l < "$trace") control transactions traced to $trace)"
