// Quickstart: build a verified NAT, push a session through it both
// ways, and inspect the rewrites — the five-minute tour of the public
// API.
package main

import (
	"fmt"
	"log"

	"vignat/internal/core"
	"vignat/internal/flow"
	"vignat/internal/netstack"
)

func main() {
	// 1. Configure: external IP, table capacity (CAP), expiry (Texp).
	cfg := core.DefaultConfig(core.IPv4(203, 0, 113, 1))
	clock := core.NewVirtualClock()
	nat, err := core.New(cfg, clock)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An internal host opens a connection to a web server.
	session := flow.ID{
		SrcIP:   core.IPv4(10, 0, 0, 42),
		SrcPort: 51234,
		DstIP:   core.IPv4(93, 184, 216, 34),
		DstPort: 80,
		Proto:   flow.TCP,
	}
	spec := &netstack.FrameSpec{ID: session, PayloadLen: 12}
	frame := netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
	fmt.Println("outbound before NAT:", tuple(frame))

	// 3. The NAT rewrites in place and tells you what it did.
	verdict := nat.Process(frame, true /* from internal interface */)
	fmt.Println("verdict:", verdict)
	fmt.Println("outbound after NAT: ", tuple(frame))

	// 4. The server replies to the translated endpoint...
	reply := netstack.Craft(make([]byte, 2048), &netstack.FrameSpec{
		ID: tuple(frame).Reverse(), PayloadLen: 20,
	})
	fmt.Println("reply before NAT:   ", tuple(reply))

	// 5. ...and the NAT forwards it back to the internal host.
	verdict = nat.Process(reply, false /* from external interface */)
	fmt.Println("verdict:", verdict)
	fmt.Println("reply after NAT:    ", tuple(reply))

	// 6. State is visible for inspection.
	fmt.Printf("live flows: %d (capacity %d)\n", nat.Table().Size(), cfg.Capacity)

	// 7. And the NAT you just ran is the NAT that gets verified.
	report, err := core.Verify(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Summary())
}

func tuple(frame []byte) flow.ID {
	var p netstack.Packet
	if err := p.Parse(frame); err != nil {
		log.Fatal(err)
	}
	return p.FlowID()
}
