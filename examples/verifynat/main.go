// Verifynat walks through the Vigor pipeline on VigNAT step by step,
// printing the artifacts the paper shows: a symbolic trace in the Fig. 9
// format, the per-property verdicts of the lazy proof (Fig. 7's P1-P5),
// and the failure modes of the deliberately broken models of Fig. 4.
package main

import (
	"fmt"
	"log"

	"vignat/internal/vigor/symbex"
	"vignat/internal/vigor/trace"
	"vignat/internal/vigor/validator"
)

func run(policy symbex.ModelPolicy) (*symbex.Result, *validator.Report) {
	res, err := symbex.RunNAT(symbex.NATEnvConfig{
		Policy: policy, PortBase: 1, PortCount: 65535,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, validator.Validate(res, validator.Config{})
}

func main() {
	fmt.Println("Step 1+2: exhaustive symbolic execution of the stateless NAT")
	fmt.Println("with the exact libVig models (Fig. 4 model (a) style)...")
	res, rep := run(symbex.ModelExact)
	fmt.Printf("  %d feasible paths, %d verification tasks\n\n", len(res.Paths), res.TraceCount())

	// Show the internal-hit path the way the paper's Fig. 9 does.
	for _, t := range res.Paths {
		c := t.Find(trace.CallLookupInternal)
		if c != nil && c.Ret {
			fmt.Println("a symbolic trace (internal packet, session hit) — cf. Fig. 9:")
			fmt.Println(t.String())
			break
		}
	}

	fmt.Println("Step 3: lazy validation (P1 semantics, P4 usage, P5 models):")
	fmt.Println(rep.Summary())
	fmt.Println()

	fmt.Println("Now the broken models, as §3 predicts:")
	_, overRep := run(symbex.ModelOverApprox)
	fmt.Println("  over-approximate model (b):", verdictLine(overRep))
	_, underRep := run(symbex.ModelUnderApprox)
	fmt.Println("  under-approximate model (c):", verdictLine(underRep))
}

func verdictLine(rep *validator.Report) string {
	p1, p5 := 0, 0
	for _, v := range rep.Verdicts {
		if v.P1Err != nil {
			p1++
		}
		p5 += len(v.P5Errs)
	}
	switch {
	case p1 > 0 && p5 == 0:
		return fmt.Sprintf("P1 fails on %d paths, P5 passes → too abstract (Step 3b)", p1)
	case p5 > 0:
		return fmt.Sprintf("P5 fails with %d violations → narrower than the contract (Step 3a)", p5)
	default:
		return "unexpectedly complete"
	}
}
