// Home gateway scenario: the workload the paper's introduction
// motivates — a home router carrying a mix of long-lived TCP sessions
// (streaming), short UDP exchanges (DNS), idle flows that must expire,
// and unsolicited outside traffic, all behind one external IP.
//
// The gateway is a service chain on the shared nf.Pipeline engine:
// an egress firewall composed with the verified NAT (outbound packets
// are firewalled, then translated; inbound packets are translated back,
// then matched against the firewall's session table). Every observable
// NAT action is cross-checked against the executable RFC 3022
// specification, exactly as before the chain existed.
//
// The chain runs as a single run-to-completion worker driven lock-step
// (Pipeline.Poll) so the oracle can observe one packet at a time; the
// chain still gets element-pass batching inside each burst. Parallel
// multi-queue operation is cmd/vignat -workers' territory — the oracle
// needs a deterministic packet order.
package main

import (
	"fmt"
	"log"
	"time"

	"vignat/internal/core"
	"vignat/internal/dpdk"
	"vignat/internal/firewall"
	"vignat/internal/flow"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/vigor/spec"
)

const (
	nHosts  = 8
	texp    = 2 * time.Second
	simTime = 30 * time.Second
)

func main() {
	extIP := core.IPv4(203, 0, 113, 77)
	cfg := core.DefaultConfig(extIP)
	cfg.Timeout = texp
	cfg.Capacity = 1024
	clock := core.NewVirtualClock()

	gwNAT, err := core.New(cfg, clock)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := firewall.New(cfg.Capacity, texp, clock)
	if err != nil {
		log.Fatal(err)
	}
	chain, err := nf.NewChain("homegw", firewall.AsNF(fw), nat.AsNF(gwNAT))
	if err != nil {
		log.Fatal(err)
	}

	pool, err := dpdk.NewMempool(256)
	if err != nil {
		log.Fatal(err)
	}
	intPort, err := dpdk.NewPort(cfg.InternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	extPort, err := dpdk.NewPort(cfg.ExternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := nf.NewPipeline(chain, nf.Config{Internal: intPort, External: extPort, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	oracle := spec.NewOracle(cfg.Capacity, texp.Nanoseconds(), extIP, cfg.PortBase, cfg.Capacity)

	dns := flow.ID{DstIP: core.IPv4(9, 9, 9, 9), DstPort: 53, Proto: flow.UDP}
	video := flow.ID{DstIP: core.IPv4(151, 101, 1, 1), DstPort: 443, Proto: flow.TCP}

	type counters struct{ sent, dropped int }
	var c counters
	scratch := make([]byte, 2048)
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)

	// process pushes one packet through the gateway chain via the
	// engine, watches which port it leaves on, checks the observation
	// against the RFC 3022 oracle, and returns the translated tuple
	// (zero on drop).
	process := func(id flow.ID, fromInternal bool) flow.ID {
		s := &netstack.FrameSpec{ID: id, PayloadLen: 64}
		frame := netstack.Craft(scratch[:netstack.FrameLen(s)], s)
		rxPort := intPort
		if !fromInternal {
			rxPort = extPort
		}
		if !rxPort.DeliverRx(frame, clock.Now()) {
			log.Fatal("RX queue rejected a frame")
		}
		if _, err := pipe.Poll(); err != nil {
			log.Fatal(err)
		}

		obs := spec.Observed{Verdict: core.VerdictDrop}
		for _, out := range []*dpdk.Port{extPort, intPort} {
			k := out.DrainTx(drain)
			if k == 0 {
				continue
			}
			if k > 1 {
				log.Fatal("one packet in, several out")
			}
			var p netstack.Packet
			if err := p.Parse(drain[0].Data); err != nil {
				log.Fatal(err)
			}
			obs.Tuple = p.FlowID()
			if out == extPort {
				obs.Verdict = core.VerdictToExternal
			} else {
				obs.Verdict = core.VerdictToInternal
			}
			if err := pool.Free(drain[0]); err != nil {
				log.Fatal(err)
			}
		}
		if err := oracle.Step(id, fromInternal, true, clock.Now(), obs); err != nil {
			log.Fatalf("RFC 3022 violation: %v", err)
		}
		if obs.Verdict == core.VerdictDrop {
			c.dropped++
			return flow.ID{}
		}
		c.sent++
		return obs.Tuple
	}

	// Each host keeps one video session alive (packet every 500 ms, the
	// server answering each one) and fires a DNS query every 5 s; DNS
	// flows (one packet) expire between queries, so each query
	// allocates and each expiry releases a port. Every 7 s an outsider
	// probes the gateway and must be dropped.
	step := 100 * time.Millisecond
	for tick := 0; time.Duration(tick)*step < simTime; tick++ {
		clock.Advance(step.Nanoseconds())
		now := time.Duration(tick) * step
		for h := 0; h < nHosts; h++ {
			host := core.IPv4(192, 168, 1, byte(10+h))
			if now%(500*time.Millisecond) == 0 {
				id := video
				id.SrcIP, id.SrcPort = host, uint16(52000+h)
				if out := process(id, true); out != (flow.ID{}) {
					// The server acks through the chain: translated
					// back by the NAT, admitted by the firewall.
					if process(out.Reverse(), false) == (flow.ID{}) {
						log.Fatal("video reply dropped")
					}
				}
			}
			if now%(5*time.Second) == time.Duration(h)*step {
				id := dns
				id.SrcIP, id.SrcPort = host, uint16(40000+h)
				process(id, true)
			}
		}
		if now%(7*time.Second) == 0 {
			// Unsolicited scan from outside: no session, must drop.
			probe := flow.ID{
				SrcIP: core.IPv4(198, 51, 100, 99), SrcPort: 31337,
				DstIP: extIP, DstPort: 17, Proto: flow.UDP,
			}
			process(probe, false)
		}
	}

	st := gwNAT.Stats()
	fmt.Printf("home gateway simulation (%v virtual) through %s:\n", simTime, chain.Name())
	fmt.Printf("  packets forwarded: %d, dropped: %d\n", c.sent, c.dropped)
	fmt.Printf("  flows created: %d, expired: %d, live now: %d\n",
		st.FlowsCreated, st.FlowsExpired, gwNAT.Table().Size())
	fmt.Printf("  firewall sessions live: %d\n", fw.Sessions())
	fmt.Printf("  spec-level state agrees: oracle tracks %d live sessions\n", oracle.Size())
	if int(st.FlowsCreated-st.FlowsExpired) != gwNAT.Table().Size() {
		log.Fatal("accounting mismatch")
	}
	if gwNAT.Table().Size() != oracle.Size() {
		log.Fatal("NAT and spec oracle disagree on live sessions")
	}
	if fw.Sessions() != gwNAT.Table().Size() {
		log.Fatal("firewall and NAT disagree on live sessions")
	}
	if pool.InUse() != 0 {
		log.Fatalf("mbuf leak: %d in use", pool.InUse())
	}
	fmt.Println("every observable action conformed to RFC 3022 ✓")
}
