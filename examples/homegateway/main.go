// Home gateway scenario: the workload the paper's introduction
// motivates — a home router carrying a mix of long-lived TCP sessions
// (streaming), short UDP exchanges (DNS), idle flows that must expire,
// and unsolicited outside traffic, all behind one external IP.
//
// The gateway is a service chain on the shared nf.Pipeline engine. By
// default it is firewall → policer → LB → NAT: the Maglev-style
// balancer fronts a resolver VIP for the home network (clients
// internal, upstream resolvers external, passthrough for everything
// else), and the policer enforces a per-host download budget on the
// translated return traffic — on the internal→external axis it sits
// just behind the firewall, so inbound packets reach it after the NAT
// has translated them back and the balancer has restored the VIP,
// which is exactly when the destination names the subscriber to
// charge. Every observable NAT action is still cross-checked against
// the executable RFC 3022 specification (for VIP flows, against the
// balancer-resolved tuple), the balancer's contract is asserted
// inline, and the policer is mirrored by its own spec oracle: a
// mid-run download surge must be clipped on exactly the packets the
// budget law names, while everything else stays conforming — so the
// chain remains RFC 3022-oracle-clean end to end. -lb=false and
// -police=false strip the respective stages.
//
// The chain runs as a single run-to-completion worker driven lock-step
// (Pipeline.Poll) so the oracle can observe one packet at a time; the
// chain still gets element-pass batching inside each burst. Parallel
// multi-queue operation is cmd/vignat -workers' territory — the oracle
// needs a deterministic packet order.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vignat/internal/core"
	"vignat/internal/dpdk"
	"vignat/internal/firewall"
	"vignat/internal/flow"
	"vignat/internal/lb"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/policer"
	"vignat/internal/vigor/spec"
)

const (
	nHosts  = 8
	texp    = 2 * time.Second
	simTime = 30 * time.Second
	dnsPort = 53

	// Per-host download budget: generous against the scripted workload
	// (~400 B/s per host), tight against the surge.
	polRate  = 2000 // bytes/second
	polBurst = 4000 // bytes
)

var resolverVIP = flow.MakeAddr(10, 53, 53, 53)

func main() {
	useLB := flag.Bool("lb", true, "front a resolver VIP with the Maglev-style balancer")
	usePol := flag.Bool("police", true, "police per-host download rate with the token-bucket policer")
	flag.Parse()

	extIP := core.IPv4(203, 0, 113, 77)
	cfg := core.DefaultConfig(extIP)
	cfg.Timeout = texp
	cfg.Capacity = 1024
	clock := core.NewVirtualClock()

	gwNAT, err := core.New(cfg, clock)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := firewall.New(cfg.Capacity, texp, clock)
	if err != nil {
		log.Fatal(err)
	}

	// The upstream resolver pool the VIP fronts.
	resolvers := []flow.Addr{
		core.IPv4(9, 9, 9, 9),
		core.IPv4(9, 9, 9, 10),
		core.IPv4(9, 9, 9, 11),
		core.IPv4(9, 9, 9, 12),
	}
	var gwLB *lb.Balancer
	resolverIdx := map[flow.Addr]int{}
	elems := []nf.NF{firewall.AsNF(fw)}

	var gwPol *policer.Policer
	var polOracle *spec.PolicerOracle
	if *usePol {
		gwPol, err = policer.New(policer.Config{
			Rate: polRate, Burst: polBurst, Capacity: cfg.Capacity, Timeout: texp,
		}, clock)
		if err != nil {
			log.Fatal(err)
		}
		polOracle = spec.NewPolicerOracle(polRate, polBurst, 0, texp.Nanoseconds())
		elems = append(elems, policer.AsNF(gwPol))
	}
	if *useLB {
		gwLB, err = lb.New(lb.Config{
			VIP:             resolverVIP,
			VIPPort:         dnsPort,
			Capacity:        cfg.Capacity,
			Timeout:         texp,
			MaxBackends:     len(resolvers),
			ClientsInternal: true, // home hosts are the clients
			Passthrough:     true, // the rest of the gateway's traffic is not ours
		}, clock)
		if err != nil {
			log.Fatal(err)
		}
		for _, ip := range resolvers {
			idx, err := gwLB.AddBackend(ip, clock.Now())
			if err != nil {
				log.Fatal(err)
			}
			resolverIdx[ip] = idx
		}
		elems = append(elems, lb.AsNF(gwLB))
	}
	elems = append(elems, nat.AsNF(gwNAT))
	chain, err := nf.NewChain("homegw", elems...)
	if err != nil {
		log.Fatal(err)
	}

	pool, err := dpdk.NewMempool(256)
	if err != nil {
		log.Fatal(err)
	}
	intPort, err := dpdk.NewPort(cfg.InternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	extPort, err := dpdk.NewPort(cfg.ExternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := nf.NewPipeline(chain, nf.Config{Internal: intPort, External: extPort, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	oracle := spec.NewOracle(cfg.Capacity, texp.Nanoseconds(), extIP, cfg.PortBase, cfg.Capacity)

	dns := flow.ID{DstIP: core.IPv4(9, 9, 9, 9), DstPort: dnsPort, Proto: flow.UDP}
	if *useLB {
		dns.DstIP = resolverVIP // hosts query the VIP, not a resolver
	}
	video := flow.ID{DstIP: core.IPv4(151, 101, 1, 1), DstPort: 443, Proto: flow.TCP}

	type counters struct{ sent, dropped, policed int }
	var c counters
	scratch := make([]byte, 2048)
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)

	isResolver := func(a flow.Addr) bool {
		_, ok := resolverIdx[a]
		return ok
	}

	// process pushes one packet through the gateway chain via the
	// engine, watches which port it leaves on, checks the observation
	// against the RFC 3022 oracle, and returns the translated tuple
	// (zero on drop). VIP-bound flows are resolved by the balancer
	// before the NAT sees them, so the oracle is fed the post-LB tuple
	// (learned from the output, after checking it names a live
	// resolver); resolver replies have their source restored to the
	// VIP by the balancer *after* the NAT, so the oracle sees the
	// un-restored source while the restoration itself is asserted here.
	//
	// inward, when non-zero, is the post-NAT tuple an external packet
	// must be translated to (the harness knows it from the session it
	// crafted the reply against). Such a packet reaches the policer —
	// last before the firewall on the inbound axis — and the policer
	// oracle adjudicates it: a conforming packet must come through, an
	// over-budget one must be clipped. A clipped packet is still a NAT
	// forward (the drop happens downstream), so the RFC 3022 oracle is
	// stepped with the reconstructed NAT output, and the clip is
	// charged to the policer's books, which are audited at the end.
	process := func(id flow.ID, fromInternal bool, payload int, inward flow.ID) flow.ID {
		s := &netstack.FrameSpec{ID: id, PayloadLen: payload}
		frame := netstack.Craft(scratch[:netstack.FrameLen(s)], s)
		wire := len(frame)
		rxPort := intPort
		if !fromInternal {
			rxPort = extPort
		}
		if !rxPort.DeliverRx(frame, clock.Now()) {
			log.Fatal("RX queue rejected a frame")
		}
		if _, err := pipe.Poll(); err != nil {
			log.Fatal(err)
		}

		obs := spec.Observed{Verdict: core.VerdictDrop}
		for _, out := range []*dpdk.Port{extPort, intPort} {
			k := out.DrainTx(drain)
			if k == 0 {
				continue
			}
			if k > 1 {
				log.Fatal("one packet in, several out")
			}
			var p netstack.Packet
			if err := p.Parse(drain[0].Data); err != nil {
				log.Fatal(err)
			}
			obs.Tuple = p.FlowID()
			if out == extPort {
				obs.Verdict = core.VerdictToExternal
			} else {
				obs.Verdict = core.VerdictToInternal
			}
			if err := pool.Free(drain[0]); err != nil {
				log.Fatal(err)
			}
		}

		expectedInward := !fromInternal && inward != (flow.ID{})
		if *usePol && expectedInward {
			// The policer oracle adjudicates every packet that reaches
			// the policer stage: the budget decides, and the chain's
			// observable outcome must match it.
			got := policer.VerdictConform
			if obs.Verdict == core.VerdictDrop {
				got = policer.VerdictDrop
			}
			if err := polOracle.Step(inward.DstIP, wire, true, true, clock.Now(), got); err != nil {
				log.Fatalf("policer spec violation: %v", err)
			}
			if got == policer.VerdictDrop {
				// The NAT forwarded; the policer clipped downstream.
				// Feed the RFC 3022 oracle the reconstructed NAT output
				// so its session state (the rejuvenation that did
				// happen) stays exact.
				obs.Verdict = core.VerdictToInternal
				obs.Tuple = inward
				if err := oracle.Step(id, fromInternal, true, clock.Now(), obs); err != nil {
					log.Fatalf("RFC 3022 violation (clipped reply): %v", err)
				}
				c.policed++
				return flow.ID{}
			}
		}

		oracleID := id
		if *useLB && fromInternal && id.DstIP == resolverVIP {
			// A VIP query must come out aimed at a live resolver; feed
			// the oracle the balancer-resolved tuple.
			if obs.Verdict != core.VerdictToExternal {
				log.Fatalf("VIP query %v not forwarded (verdict %v)", id, obs.Verdict)
			}
			if !isResolver(obs.Tuple.DstIP) {
				log.Fatalf("VIP query %v steered to %v, not a resolver", id, obs.Tuple.DstIP)
			}
			if _, live := gwLB.Backend(resolverIdx[obs.Tuple.DstIP]); !live {
				log.Fatalf("VIP query %v steered to removed resolver %v", id, obs.Tuple.DstIP)
			}
			oracleID.DstIP = obs.Tuple.DstIP
		}
		if *useLB && !fromInternal && isResolver(id.SrcIP) && id.SrcPort == dnsPort &&
			obs.Verdict == core.VerdictToInternal {
			// The balancer restored the resolver's source to the VIP
			// after the NAT's rewrite; assert that, then un-restore for
			// the RFC 3022 check of the NAT's own action.
			if obs.Tuple.SrcIP != resolverVIP {
				log.Fatalf("resolver reply reached the host as %v, want VIP %v",
					obs.Tuple.SrcIP, resolverVIP)
			}
			obs.Tuple.SrcIP = id.SrcIP
		}
		if err := oracle.Step(oracleID, fromInternal, true, clock.Now(), obs); err != nil {
			log.Fatalf("RFC 3022 violation: %v", err)
		}
		if obs.Verdict == core.VerdictDrop {
			c.dropped++
			return flow.ID{}
		}
		c.sent++
		return obs.Tuple
	}

	// Each host keeps one video session alive (packet every 500 ms, the
	// server answering each one) and queries the resolver VIP — hosts
	// 0–3 every second (their sticky entries stay live, pinning
	// stickiness), hosts 4–7 every 5 s (their entries expire between
	// queries, exercising expiry and re-selection). A third of the way
	// in, host 0's video server floods it with a back-to-back download
	// surge: the policer must clip exactly the packets the budget law
	// names. Halfway through, one resolver is drained: exactly its
	// flows must remap. Every 7 s an outsider probes the gateway and
	// must be dropped.
	assigned := make(map[int]flow.Addr) // host → resolver of the last query
	var removed flow.Addr
	remapped, surgeDropped := 0, 0
	step := 100 * time.Millisecond
	surgeAt := simTime / 3
	for tick := 0; time.Duration(tick)*step < simTime; tick++ {
		clock.Advance(step.Nanoseconds())
		now := time.Duration(tick) * step

		if *useLB && now == simTime/2 {
			// Drain one resolver mid-run. Sticky flows pinned to it are
			// erased (and must re-select); everyone else's stay put.
			removed = resolvers[0]
			if err := gwLB.RemoveBackend(resolverIdx[removed]); err != nil {
				log.Fatal(err)
			}
		}

		for h := 0; h < nHosts; h++ {
			host := core.IPv4(192, 168, 1, byte(10+h))
			if now%(500*time.Millisecond) == 0 {
				id := video
				id.SrcIP, id.SrcPort = host, uint16(52000+h)
				if out := process(id, true, 64, flow.ID{}); out != (flow.ID{}) {
					// The server acks through the chain: translated
					// back by the NAT, admitted by the firewall.
					if process(out.Reverse(), false, 64, id.Reverse()) == (flow.ID{}) {
						log.Fatal("video reply dropped")
					}
					if *usePol && h == 0 && now == surgeAt {
						// The download surge: a back-to-back train of
						// large segments into host 0, far past its
						// burst budget. The policer oracle inside
						// process decides each packet's fate; the
						// budget must clip the tail of the train.
						for k := 0; k < 12; k++ {
							if process(out.Reverse(), false, 1200, id.Reverse()) == (flow.ID{}) {
								surgeDropped++
							}
						}
						if surgeDropped == 0 {
							log.Fatal("download surge was never clipped; the policer policed nothing")
						}
					}
				}
			}
			interval := 5 * time.Second
			if h < 4 {
				interval = time.Second
			}
			if now%interval == time.Duration(h)*step {
				id := dns
				id.SrcIP, id.SrcPort = host, uint16(40000+h)
				out := process(id, true, 64, flow.ID{})
				if out == (flow.ID{}) {
					log.Fatal("DNS query dropped")
				}
				if *useLB {
					resolver := out.DstIP
					if prev, ok := assigned[h]; ok && resolver != prev {
						// A flow may move only if its resolver was just
						// drained (sticky hosts) or its sticky entry
						// expired and the membership changed (5s hosts).
						if prev != removed && h < 4 {
							log.Fatalf("host %d moved %v→%v though its resolver is live and its flow sticky",
								h, prev, resolver)
						}
						remapped++
					}
					assigned[h] = resolver
				}
				// The resolver answers; the reply must come back from
				// the VIP (asserted inside process). The un-restored
				// inward tuple is the query's reverse with the
				// balancer-resolved source.
				inward := id.Reverse()
				inward.SrcIP = out.DstIP
				if process(out.Reverse(), false, 64, inward) == (flow.ID{}) {
					log.Fatal("DNS reply dropped")
				}
			}
		}
		if now%(7*time.Second) == 0 {
			// Unsolicited scan from outside: no session, must drop — at
			// the NAT, before the policer ever sees it.
			probe := flow.ID{
				SrcIP: core.IPv4(198, 51, 100, 99), SrcPort: 31337,
				DstIP: extIP, DstPort: 17, Proto: flow.UDP,
			}
			process(probe, false, 64, flow.ID{})
		}
	}

	st := gwNAT.Stats()
	fmt.Printf("home gateway simulation (%v virtual) through %s:\n", simTime, chain.Name())
	fmt.Printf("  packets forwarded: %d, dropped: %d, policed: %d\n", c.sent, c.dropped, c.policed)
	fmt.Printf("  flows created: %d, expired: %d, live now: %d\n",
		st.FlowsCreated, st.FlowsExpired, gwNAT.Table().Size())
	fmt.Printf("  firewall sessions live: %d\n", fw.Sessions())
	if *usePol {
		pst := gwPol.Stats()
		fmt.Printf("  policer: %d conformed, %d clipped (surge), %d hosts tracked\n",
			pst.Conformed, pst.DroppedOverRate, gwPol.Subscribers())
		if int(pst.DroppedOverRate) != surgeDropped || surgeDropped == 0 {
			log.Fatalf("policer books disagree: %d clipped on the wire, %d in the stats",
				surgeDropped, pst.DroppedOverRate)
		}
		if pst.DroppedTableFull != 0 || pst.DroppedMalformed != 0 {
			log.Fatalf("unexpected policer drops: %+v", pst)
		}
		if gwPol.Subscribers() != polOracle.Size() {
			log.Fatalf("policer tracks %d hosts, spec oracle %d", gwPol.Subscribers(), polOracle.Size())
		}
	}
	if *useLB {
		lst := gwLB.Stats()
		fmt.Printf("  balancer: %d queries steered, %d replies restored to VIP, %d passthrough, %d sticky expiries\n",
			lst.ToBackend, lst.ToClient, lst.Passthrough, lst.FlowsExpired)
		fmt.Printf("  resolver %v drained mid-run: %d host(s) remapped, %d live resolvers remain\n",
			removed, remapped, gwLB.LiveBackends())
		if gwLB.LiveBackends() != len(resolvers)-1 {
			log.Fatal("resolver pool size wrong after drain")
		}
		if lst.ToBackend == 0 || lst.ToClient == 0 || lst.Passthrough == 0 {
			log.Fatal("balancer saw no traffic of some class it must see")
		}
		if remapped == 0 {
			log.Fatal("draining a resolver remapped no flow; the churn proved nothing")
		}
	}
	fmt.Printf("  spec-level state agrees: oracle tracks %d live sessions\n", oracle.Size())
	if int(st.FlowsCreated-st.FlowsExpired) != gwNAT.Table().Size() {
		log.Fatal("accounting mismatch")
	}
	if gwNAT.Table().Size() != oracle.Size() {
		log.Fatal("NAT and spec oracle disagree on live sessions")
	}
	if fw.Sessions() != gwNAT.Table().Size() {
		log.Fatal("firewall and NAT disagree on live sessions")
	}
	if pool.InUse() != 0 {
		log.Fatalf("mbuf leak: %d in use", pool.InUse())
	}
	fmt.Println("every observable action conformed to RFC 3022 ✓")
}
