// Home gateway scenario: the workload the paper's introduction
// motivates — a home router carrying a mix of long-lived TCP sessions
// (streaming), short UDP exchanges (DNS), idle flows that must expire,
// and unsolicited outside traffic, all behind one external IP.
//
// The gateway is a service chain on the shared nf.Pipeline engine. By
// default it is firewall → LB → NAT: the Maglev-style balancer fronts
// a resolver VIP for the home network (clients internal, upstream
// resolvers external, passthrough for everything else), so DNS queries
// to the VIP are firewalled, steered to a resolver, then translated —
// and the resolver's answers are translated back, restored to the VIP,
// and matched against the firewall's session table. Every observable
// NAT action is still cross-checked against the executable RFC 3022
// specification (for VIP flows, against the balancer-resolved tuple),
// and the balancer's own contract — stickiness, removal remaps only
// the removed resolver's flows, replies restored to the VIP — is
// asserted inline. -lb=false runs the original firewall → NAT chain.
//
// The chain runs as a single run-to-completion worker driven lock-step
// (Pipeline.Poll) so the oracle can observe one packet at a time; the
// chain still gets element-pass batching inside each burst. Parallel
// multi-queue operation is cmd/vignat -workers' territory — the oracle
// needs a deterministic packet order.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vignat/internal/core"
	"vignat/internal/dpdk"
	"vignat/internal/firewall"
	"vignat/internal/flow"
	"vignat/internal/lb"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
	"vignat/internal/vigor/spec"
)

const (
	nHosts  = 8
	texp    = 2 * time.Second
	simTime = 30 * time.Second
	dnsPort = 53
)

var resolverVIP = flow.MakeAddr(10, 53, 53, 53)

func main() {
	useLB := flag.Bool("lb", true, "front a resolver VIP with the Maglev-style balancer (firewall→LB→NAT chain)")
	flag.Parse()

	extIP := core.IPv4(203, 0, 113, 77)
	cfg := core.DefaultConfig(extIP)
	cfg.Timeout = texp
	cfg.Capacity = 1024
	clock := core.NewVirtualClock()

	gwNAT, err := core.New(cfg, clock)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := firewall.New(cfg.Capacity, texp, clock)
	if err != nil {
		log.Fatal(err)
	}

	// The upstream resolver pool the VIP fronts.
	resolvers := []flow.Addr{
		core.IPv4(9, 9, 9, 9),
		core.IPv4(9, 9, 9, 10),
		core.IPv4(9, 9, 9, 11),
		core.IPv4(9, 9, 9, 12),
	}
	var gwLB *lb.Balancer
	resolverIdx := map[flow.Addr]int{}
	elems := []nf.NF{firewall.AsNF(fw)}
	if *useLB {
		gwLB, err = lb.New(lb.Config{
			VIP:             resolverVIP,
			VIPPort:         dnsPort,
			Capacity:        cfg.Capacity,
			Timeout:         texp,
			MaxBackends:     len(resolvers),
			ClientsInternal: true, // home hosts are the clients
			Passthrough:     true, // the rest of the gateway's traffic is not ours
		}, clock)
		if err != nil {
			log.Fatal(err)
		}
		for _, ip := range resolvers {
			idx, err := gwLB.AddBackend(ip, clock.Now())
			if err != nil {
				log.Fatal(err)
			}
			resolverIdx[ip] = idx
		}
		elems = append(elems, lb.AsNF(gwLB))
	}
	elems = append(elems, nat.AsNF(gwNAT))
	chain, err := nf.NewChain("homegw", elems...)
	if err != nil {
		log.Fatal(err)
	}

	pool, err := dpdk.NewMempool(256)
	if err != nil {
		log.Fatal(err)
	}
	intPort, err := dpdk.NewPort(cfg.InternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	extPort, err := dpdk.NewPort(cfg.ExternalPort, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := nf.NewPipeline(chain, nf.Config{Internal: intPort, External: extPort, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	oracle := spec.NewOracle(cfg.Capacity, texp.Nanoseconds(), extIP, cfg.PortBase, cfg.Capacity)

	dns := flow.ID{DstIP: core.IPv4(9, 9, 9, 9), DstPort: dnsPort, Proto: flow.UDP}
	if *useLB {
		dns.DstIP = resolverVIP // hosts query the VIP, not a resolver
	}
	video := flow.ID{DstIP: core.IPv4(151, 101, 1, 1), DstPort: 443, Proto: flow.TCP}

	type counters struct{ sent, dropped int }
	var c counters
	scratch := make([]byte, 2048)
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)

	isResolver := func(a flow.Addr) bool {
		_, ok := resolverIdx[a]
		return ok
	}

	// process pushes one packet through the gateway chain via the
	// engine, watches which port it leaves on, checks the observation
	// against the RFC 3022 oracle, and returns the translated tuple
	// (zero on drop). VIP-bound flows are resolved by the balancer
	// before the NAT sees them, so the oracle is fed the post-LB tuple
	// (learned from the output, after checking it names a live
	// resolver); resolver replies have their source restored to the
	// VIP by the balancer *after* the NAT, so the oracle sees the
	// un-restored source while the restoration itself is asserted here.
	process := func(id flow.ID, fromInternal bool) flow.ID {
		s := &netstack.FrameSpec{ID: id, PayloadLen: 64}
		frame := netstack.Craft(scratch[:netstack.FrameLen(s)], s)
		rxPort := intPort
		if !fromInternal {
			rxPort = extPort
		}
		if !rxPort.DeliverRx(frame, clock.Now()) {
			log.Fatal("RX queue rejected a frame")
		}
		if _, err := pipe.Poll(); err != nil {
			log.Fatal(err)
		}

		obs := spec.Observed{Verdict: core.VerdictDrop}
		for _, out := range []*dpdk.Port{extPort, intPort} {
			k := out.DrainTx(drain)
			if k == 0 {
				continue
			}
			if k > 1 {
				log.Fatal("one packet in, several out")
			}
			var p netstack.Packet
			if err := p.Parse(drain[0].Data); err != nil {
				log.Fatal(err)
			}
			obs.Tuple = p.FlowID()
			if out == extPort {
				obs.Verdict = core.VerdictToExternal
			} else {
				obs.Verdict = core.VerdictToInternal
			}
			if err := pool.Free(drain[0]); err != nil {
				log.Fatal(err)
			}
		}

		oracleID := id
		if *useLB && fromInternal && id.DstIP == resolverVIP {
			// A VIP query must come out aimed at a live resolver; feed
			// the oracle the balancer-resolved tuple.
			if obs.Verdict != core.VerdictToExternal {
				log.Fatalf("VIP query %v not forwarded (verdict %v)", id, obs.Verdict)
			}
			if !isResolver(obs.Tuple.DstIP) {
				log.Fatalf("VIP query %v steered to %v, not a resolver", id, obs.Tuple.DstIP)
			}
			if _, live := gwLB.Backend(resolverIdx[obs.Tuple.DstIP]); !live {
				log.Fatalf("VIP query %v steered to removed resolver %v", id, obs.Tuple.DstIP)
			}
			oracleID.DstIP = obs.Tuple.DstIP
		}
		if *useLB && !fromInternal && isResolver(id.SrcIP) && id.SrcPort == dnsPort &&
			obs.Verdict == core.VerdictToInternal {
			// The balancer restored the resolver's source to the VIP
			// after the NAT's rewrite; assert that, then un-restore for
			// the RFC 3022 check of the NAT's own action.
			if obs.Tuple.SrcIP != resolverVIP {
				log.Fatalf("resolver reply reached the host as %v, want VIP %v",
					obs.Tuple.SrcIP, resolverVIP)
			}
			obs.Tuple.SrcIP = id.SrcIP
		}
		if err := oracle.Step(oracleID, fromInternal, true, clock.Now(), obs); err != nil {
			log.Fatalf("RFC 3022 violation: %v", err)
		}
		if obs.Verdict == core.VerdictDrop {
			c.dropped++
			return flow.ID{}
		}
		c.sent++
		return obs.Tuple
	}

	// Each host keeps one video session alive (packet every 500 ms, the
	// server answering each one) and queries the resolver VIP — hosts
	// 0–3 every second (their sticky entries stay live, pinning
	// stickiness), hosts 4–7 every 5 s (their entries expire between
	// queries, exercising expiry and re-selection). Halfway through,
	// one resolver is drained: exactly its flows must remap. Every 7 s
	// an outsider probes the gateway and must be dropped.
	assigned := make(map[int]flow.Addr) // host → resolver of the last query
	var removed flow.Addr
	remapped := 0
	step := 100 * time.Millisecond
	for tick := 0; time.Duration(tick)*step < simTime; tick++ {
		clock.Advance(step.Nanoseconds())
		now := time.Duration(tick) * step

		if *useLB && now == simTime/2 {
			// Drain one resolver mid-run. Sticky flows pinned to it are
			// erased (and must re-select); everyone else's stay put.
			removed = resolvers[0]
			if err := gwLB.RemoveBackend(resolverIdx[removed]); err != nil {
				log.Fatal(err)
			}
		}

		for h := 0; h < nHosts; h++ {
			host := core.IPv4(192, 168, 1, byte(10+h))
			if now%(500*time.Millisecond) == 0 {
				id := video
				id.SrcIP, id.SrcPort = host, uint16(52000+h)
				if out := process(id, true); out != (flow.ID{}) {
					// The server acks through the chain: translated
					// back by the NAT, admitted by the firewall.
					if process(out.Reverse(), false) == (flow.ID{}) {
						log.Fatal("video reply dropped")
					}
				}
			}
			interval := 5 * time.Second
			if h < 4 {
				interval = time.Second
			}
			if now%interval == time.Duration(h)*step {
				id := dns
				id.SrcIP, id.SrcPort = host, uint16(40000+h)
				out := process(id, true)
				if out == (flow.ID{}) {
					log.Fatal("DNS query dropped")
				}
				if *useLB {
					resolver := out.DstIP
					if prev, ok := assigned[h]; ok && resolver != prev {
						// A flow may move only if its resolver was just
						// drained (sticky hosts) or its sticky entry
						// expired and the membership changed (5s hosts).
						if prev != removed && h < 4 {
							log.Fatalf("host %d moved %v→%v though its resolver is live and its flow sticky",
								h, prev, resolver)
						}
						remapped++
					}
					assigned[h] = resolver
				}
				// The resolver answers; the reply must come back from
				// the VIP (asserted inside process).
				if process(out.Reverse(), false) == (flow.ID{}) {
					log.Fatal("DNS reply dropped")
				}
			}
		}
		if now%(7*time.Second) == 0 {
			// Unsolicited scan from outside: no session, must drop.
			probe := flow.ID{
				SrcIP: core.IPv4(198, 51, 100, 99), SrcPort: 31337,
				DstIP: extIP, DstPort: 17, Proto: flow.UDP,
			}
			process(probe, false)
		}
	}

	st := gwNAT.Stats()
	fmt.Printf("home gateway simulation (%v virtual) through %s:\n", simTime, chain.Name())
	fmt.Printf("  packets forwarded: %d, dropped: %d\n", c.sent, c.dropped)
	fmt.Printf("  flows created: %d, expired: %d, live now: %d\n",
		st.FlowsCreated, st.FlowsExpired, gwNAT.Table().Size())
	fmt.Printf("  firewall sessions live: %d\n", fw.Sessions())
	if *useLB {
		lst := gwLB.Stats()
		fmt.Printf("  balancer: %d queries steered, %d replies restored to VIP, %d passthrough, %d sticky expiries\n",
			lst.ToBackend, lst.ToClient, lst.Passthrough, lst.FlowsExpired)
		fmt.Printf("  resolver %v drained mid-run: %d host(s) remapped, %d live resolvers remain\n",
			removed, remapped, gwLB.LiveBackends())
		if gwLB.LiveBackends() != len(resolvers)-1 {
			log.Fatal("resolver pool size wrong after drain")
		}
		if lst.ToBackend == 0 || lst.ToClient == 0 || lst.Passthrough == 0 {
			log.Fatal("balancer saw no traffic of some class it must see")
		}
		if remapped == 0 {
			log.Fatal("draining a resolver remapped no flow; the churn proved nothing")
		}
	}
	fmt.Printf("  spec-level state agrees: oracle tracks %d live sessions\n", oracle.Size())
	if int(st.FlowsCreated-st.FlowsExpired) != gwNAT.Table().Size() {
		log.Fatal("accounting mismatch")
	}
	if gwNAT.Table().Size() != oracle.Size() {
		log.Fatal("NAT and spec oracle disagree on live sessions")
	}
	if fw.Sessions() != gwNAT.Table().Size() {
		log.Fatal("firewall and NAT disagree on live sessions")
	}
	if pool.InUse() != 0 {
		log.Fatalf("mbuf leak: %d in use", pool.InUse())
	}
	fmt.Println("every observable action conformed to RFC 3022 ✓")
}
