// Home gateway scenario: the workload the paper's introduction
// motivates — a NAT in a home router carrying a mix of long-lived TCP
// sessions (streaming), short UDP exchanges (DNS), and idle flows that
// must expire, all behind one external IP. Runs on the simulated DPDK
// substrate with virtual time, and cross-checks every observable action
// against the executable RFC 3022 specification.
package main

import (
	"fmt"
	"log"
	"time"

	"vignat/internal/core"
	"vignat/internal/flow"
	"vignat/internal/netstack"
	"vignat/internal/vigor/spec"
)

const (
	nHosts  = 8
	texp    = 2 * time.Second
	simTime = 30 * time.Second
)

func main() {
	extIP := core.IPv4(203, 0, 113, 77)
	cfg := core.DefaultConfig(extIP)
	cfg.Timeout = texp
	cfg.Capacity = 1024
	clock := core.NewVirtualClock()
	nat, err := core.New(cfg, clock)
	if err != nil {
		log.Fatal(err)
	}
	oracle := spec.NewOracle(cfg.Capacity, texp.Nanoseconds(), extIP, cfg.PortBase, cfg.Capacity)

	dns := flow.ID{DstIP: core.IPv4(9, 9, 9, 9), DstPort: 53, Proto: flow.UDP}
	video := flow.ID{DstIP: core.IPv4(151, 101, 1, 1), DstPort: 443, Proto: flow.TCP}

	type counters struct{ sent, dropped, expired int }
	var c counters
	scratch := make([]byte, 2048)

	process := func(id flow.ID, fromInternal bool) core.Verdict {
		s := &netstack.FrameSpec{ID: id, PayloadLen: 64}
		frame := netstack.Craft(scratch[:netstack.FrameLen(s)], s)
		v := nat.Process(frame, fromInternal)
		obs := spec.Observed{Verdict: v}
		if v != core.VerdictDrop {
			var p netstack.Packet
			if err := p.Parse(frame); err != nil {
				log.Fatal(err)
			}
			obs.Tuple = p.FlowID()
		}
		if err := oracle.Step(id, fromInternal, true, clock.Now(), obs); err != nil {
			log.Fatalf("RFC 3022 violation: %v", err)
		}
		if v == core.VerdictDrop {
			c.dropped++
		} else {
			c.sent++
		}
		return v
	}

	// Each host keeps one video session alive (packet every 500 ms) and
	// fires a DNS query every 5 s; DNS flows (one packet) expire between
	// queries, so each query allocates and each expiry releases a port.
	step := 100 * time.Millisecond
	for tick := 0; time.Duration(tick)*step < simTime; tick++ {
		clock.Advance(step.Nanoseconds())
		now := time.Duration(tick) * step
		for h := 0; h < nHosts; h++ {
			host := core.IPv4(192, 168, 1, byte(10+h))
			if now%(500*time.Millisecond) == 0 {
				id := video
				id.SrcIP, id.SrcPort = host, uint16(52000+h)
				process(id, true)
			}
			if now%(5*time.Second) == time.Duration(h)*step {
				id := dns
				id.SrcIP, id.SrcPort = host, uint16(40000+h)
				process(id, true)
			}
		}
	}

	st := nat.Stats()
	fmt.Printf("home gateway simulation (%v virtual):\n", simTime)
	fmt.Printf("  packets forwarded: %d, dropped: %d\n", c.sent, c.dropped)
	fmt.Printf("  flows created: %d, expired: %d, live now: %d\n",
		st.FlowsCreated, st.FlowsExpired, nat.Table().Size())
	fmt.Printf("  spec-level state agrees: oracle tracks %d live sessions\n", oracle.Size())
	if int(st.FlowsCreated-st.FlowsExpired) != nat.Table().Size() {
		log.Fatal("accounting mismatch")
	}
	if nat.Table().Size() != oracle.Size() {
		log.Fatal("NAT and spec oracle disagree on live sessions")
	}
	fmt.Println("every observable action conformed to RFC 3022 ✓")
}
