// The paper's §3 running example: the discard-protocol NF (drop port 9,
// forward everything else), run in production form on the shared
// nf.Pipeline engine and then verified with all three ring models of
// Fig. 4 — demonstrating the exact failure modes the paper describes.
//
// The frame NF is unsharded, so the pipeline runs it as one
// run-to-completion worker on single-queue ports; sharded NFs spread
// across queue pairs and workers instead (see cmd/vignat -workers).
package main

import (
	"fmt"
	"log"

	"vignat/internal/discard"
	"vignat/internal/dpdk"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/netstack"
	"vignat/internal/nf"
)

func main() {
	// --- Production run: the frame-level discard NF on the engine. ---
	pool, err := dpdk.NewMempool(64)
	if err != nil {
		log.Fatal(err)
	}
	inside, err := dpdk.NewPort(0, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	outside, err := dpdk.NewPort(1, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		log.Fatal(err)
	}
	clock := libvig.NewVirtualClock(0)
	pipe, err := nf.NewPipeline(discard.NewFrameNF(), nf.Config{
		Internal: inside,
		External: outside,
		Clock:    clock,
	})
	if err != nil {
		log.Fatal(err)
	}

	ports := []uint16{80, 9, 443, 9, 22, 8080}
	buf := make([]byte, 2048)
	for i, dst := range ports {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP:   flow.MakeAddr(192, 168, 1, 2),
			DstIP:   flow.MakeAddr(198, 51, 100, 1),
			SrcPort: uint16(40000 + i),
			DstPort: dst,
			Proto:   flow.UDP,
		}}
		clock.Advance(1000)
		inside.DeliverRx(netstack.Craft(buf[:netstack.FrameLen(spec)], spec), clock.Now())
	}
	if _, err := pipe.Poll(); err != nil {
		log.Fatal(err)
	}

	var delivered []uint16
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)
	for {
		k := outside.DrainTx(drain)
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			var p netstack.Packet
			if err := p.Parse(drain[i].Data); err != nil {
				log.Fatal(err)
			}
			delivered = append(delivered, p.DstPort)
			if err := pool.Free(drain[i]); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := pipe.NF().NFStats()
	fmt.Printf("received %d, discarded %d (port 9), sent %d: %v\n",
		st.Processed, st.Dropped, st.Forwarded, delivered)
	for _, p := range delivered {
		if p == 9 {
			log.Fatal("BUG: a port-9 packet escaped!")
		}
	}
	if pool.InUse() != 0 {
		log.Fatalf("BUG: %d mbufs leaked", pool.InUse())
	}

	// --- Verification: the §3 pipeline with each Fig. 4 model. ---
	for _, m := range []struct {
		name  string
		model discard.RingModel
	}{
		{"model (a) exact       ", discard.RingModelExact},
		{"model (b) over-approx ", discard.RingModelOverApprox},
		{"model (c) under-approx", discard.RingModelUnderApprox},
	} {
		rep, err := discard.Verify(m.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s → %s\n", m.name, rep.Summary())
	}
	fmt.Println("\nAs §3 predicts: (a) proves the NF, (b) breaks the semantic")
	fmt.Println("property (Step 3b), (c) fails model validation (Step 3a).")
}
