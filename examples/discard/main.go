// The paper's §3 running example: the discard-protocol NF (drop port 9,
// forward everything else, buffer bursts in a libVig ring), run in
// production form and then verified with all three ring models of
// Fig. 4 — demonstrating the exact failure modes the paper describes.
package main

import (
	"fmt"
	"log"

	"vignat/internal/discard"
)

func main() {
	// --- Production run: a burst of packets, some to port 9. ---
	inbound := []discard.Packet{
		{Port: 80}, {Port: 9}, {Port: 443}, {Port: 9}, {Port: 22}, {Port: 8080},
	}
	var delivered []uint16
	i := 0
	nf, err := discard.New(
		func() (discard.Packet, bool) {
			if i < len(inbound) {
				p := inbound[i]
				i++
				return p, true
			}
			return discard.Packet{}, false
		},
		func(p discard.Packet) bool {
			delivered = append(delivered, p.Port)
			return true
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	for iter := 0; iter < len(inbound)+discard.RingCapacity; iter++ {
		nf.RunOnce()
	}
	rx, dropped, sent := nf.Stats()
	fmt.Printf("received %d, discarded %d (port 9), sent %d: %v\n", rx, dropped, sent, delivered)
	for _, p := range delivered {
		if p == 9 {
			log.Fatal("BUG: a port-9 packet escaped!")
		}
	}

	// --- Verification: the §3 pipeline with each Fig. 4 model. ---
	for _, m := range []struct {
		name  string
		model discard.RingModel
	}{
		{"model (a) exact       ", discard.RingModelExact},
		{"model (b) over-approx ", discard.RingModelOverApprox},
		{"model (c) under-approx", discard.RingModelUnderApprox},
	} {
		rep, err := discard.Verify(m.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s → %s\n", m.name, rep.Summary())
	}
	fmt.Println("\nAs §3 predicts: (a) proves the NF, (b) breaks the semantic")
	fmt.Println("property (Step 3b), (c) fails model validation (Step 3a).")
}
