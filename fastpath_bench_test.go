// Benchmarks for the established-flow fast path (internal/fastpath +
// the nf.Pipeline pre-classifier): each scenario runs the full engine
// loop — RX burst, steer, classification, NF or cache, TX assembly,
// wire drain — with the flow cache on and, as the control, explicitly
// off, so the pair's ratio is the fast path's whole story. Hit100 is
// steady-state established traffic (every packet a cache hit after
// warmup); Churn is the adversarial floor, a SYN-scan-shaped flood of
// never-repeating tuples that the doorkeeper must shrug off.
//
//	go test -bench=FastPath -benchmem
package vignat_test

import (
	"testing"
	"time"

	"vignat/internal/dpdk"
	"vignat/internal/experiments"
	"vignat/internal/flow"
	"vignat/internal/libvig"
	"vignat/internal/nat"
	"vignat/internal/netstack"
	"vignat/internal/nf"
)

// setupFastPathPipe builds the 1-shard NAT pipeline used by all
// fast-path benchmarks, with the cache sized fastPath (or disabled).
func setupFastPathPipe(b *testing.B, fastPath int) (*nf.Pipeline, *dpdk.Port, *dpdk.Port, *dpdk.Mempool) {
	b.Helper()
	sh, err := nat.NewSharded(nat.Config{
		Capacity:     experiments.Capacity,
		Timeout:      time.Hour,
		ExternalIP:   experiments.ExtIP,
		PortBase:     experiments.PortBase,
		ExternalPort: 1,
	}, libvig.NewSystemClock(), 1)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := dpdk.NewMempool(256)
	if err != nil {
		b.Fatal(err)
	}
	intPort, err := dpdk.NewPort(0, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		b.Fatal(err)
	}
	extPort, err := dpdk.NewPort(1, dpdk.DefaultRxQueue, dpdk.DefaultTxQueue, pool)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := nf.NewPipeline(sh, nf.Config{
		Internal: intPort, External: extPort,
		Clock: libvig.NewSystemClock(), FastPath: fastPath,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pipe, intPort, extPort, pool
}

// benchFastPathHit100 drives benchNFFlows established flows round-robin
// through the poll loop. Two warmup passes make every flow's second
// sighting admit it past the doorkeeper, so with the cache on the
// measured region is ~100% hits.
func benchFastPathHit100(b *testing.B, fastPath int) {
	pipe, intPort, extPort, pool := setupFastPathPipe(b, fastPath)
	frames := make([][]byte, benchNFFlows)
	for i := range frames {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP:   flow.MakeAddr(10, 0, byte(i>>8), byte(i)),
			DstIP:   flow.MakeAddr(198, 51, 100, 1),
			SrcPort: uint16(10000 + i),
			DstPort: 80,
			Proto:   flow.UDP,
		}}
		frames[i] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
	}
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)
	runPass := func(from, n int) {
		for done := 0; done < n; {
			c := nf.DefaultBurst
			if done+c > n {
				c = n - done
			}
			for j := 0; j < c; j++ {
				if !intPort.DeliverRx(frames[(from+done+j)%benchNFFlows], 0) {
					b.Fatal("rx queue full")
				}
			}
			if _, err := pipe.Poll(); err != nil {
				b.Fatal(err)
			}
			for {
				k := extPort.DrainTx(drain)
				if k == 0 {
					break
				}
				for i := 0; i < k; i++ {
					if err := pool.Free(drain[i]); err != nil {
						b.Fatal(err)
					}
				}
			}
			done += c
		}
	}
	runPass(0, 2*benchNFFlows) // create, then admit+install every flow
	b.ResetTimer()
	runPass(0, b.N)
}

func BenchmarkFastPathHit100(b *testing.B)    { benchFastPathHit100(b, nf.DefaultFastPathEntries) }
func BenchmarkFastPathHit100Off(b *testing.B) { benchFastPathHit100(b, nf.FastPathDisabled) }

// benchFastPathChurn drives the adversarial shape: unsolicited
// external tuples that never repeat within the NAT's table, so every
// packet is a cache miss AND a NAT-table miss (a port scan against the
// external IP). Nothing installs — the NAT forwards none of it — so
// the cached pipeline's extra work is exactly the pre-classifier:
// extract, hash, probe, doorkeeper tag.
func benchFastPathChurn(b *testing.B, fastPath int) {
	pipe, intPort, extPort, pool := setupFastPathPipe(b, fastPath)
	// A large rotating universe of scan frames; wraps are harmless
	// (declined offers never install, so repeats still miss).
	const scanFlows = 4096
	frames := make([][]byte, scanFlows)
	for i := range frames {
		spec := &netstack.FrameSpec{ID: flow.ID{
			SrcIP:   flow.MakeAddr(203, 0, byte(i>>8), byte(i)),
			DstIP:   experiments.ExtIP,
			SrcPort: uint16(1024 + i),
			DstPort: uint16(int(experiments.PortBase) + i%experiments.Capacity),
			Proto:   flow.UDP,
		}}
		frames[i] = netstack.Craft(make([]byte, netstack.FrameLen(spec)), spec)
	}
	drain := make([]*dpdk.Mbuf, nf.DefaultBurst)
	b.ResetTimer()
	for done := 0; done < b.N; {
		c := nf.DefaultBurst
		if done+c > b.N {
			c = b.N - done
		}
		for j := 0; j < c; j++ {
			if !extPort.DeliverRx(frames[(done+j)%scanFlows], 0) {
				b.Fatal("rx queue full")
			}
		}
		if _, err := pipe.Poll(); err != nil {
			b.Fatal(err)
		}
		for {
			k := intPort.DrainTx(drain)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				if err := pool.Free(drain[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
		done += c
	}
}

func BenchmarkFastPathChurn(b *testing.B)    { benchFastPathChurn(b, nf.DefaultFastPathEntries) }
func BenchmarkFastPathChurnOff(b *testing.B) { benchFastPathChurn(b, nf.FastPathDisabled) }
